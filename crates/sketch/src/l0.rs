//! Distinct-element (`L0`) estimation — Theorem 2.12.
//!
//! The paper needs a `(1 ± 1/2)`-approximate count of distinct elements in
//! `Õ(1)` space (references [5, 11, 13, 30, 31]): `LargeCommon` measures
//! the coverage of a sampled set collection with it (Fig 3), and
//! `LargeSetComplete` estimates superset coverage with it (Fig 6).
//!
//! We implement the KMV / bottom-k summary: hash every item with a
//! pairwise-independent function into `[0, p)` and keep the `k` smallest
//! distinct hash values; with `v_k` the k-th smallest, `(k−1)·p / v_k` is
//! an unbiased-to-first-order estimate of the distinct count with relative
//! error `O(1/√k)`. [`L0Estimator`] takes the median of several
//! independent KMV summaries to boost the success probability, exactly the
//! repetition structure the paper assumes.

use std::collections::BTreeSet;

use kcov_hash::{pairwise, KWise, RangeHash, SeedSequence, MERSENNE_P};
use kcov_obs::{LedgerNode, SketchStats};

use crate::arena::{backend, Backend, SortedSlab};
use crate::space::SpaceUsage;

/// Bottom-k storage: the arena keeps one flat sorted slab; the
/// reference backend keeps the pre-arena `BTreeSet`. Both hold the same
/// value set and iterate ascending, so every estimate, trace byte and
/// wire byte is backend-invariant (`arena_parity` proves it end to
/// end).
#[derive(Debug, Clone)]
enum KmvStore {
    Slab(SortedSlab),
    Tree(BTreeSet<u64>),
}

impl KmvStore {
    fn new(k: usize) -> Self {
        match backend() {
            Backend::Arena => KmvStore::Slab(SortedSlab::new(k)),
            Backend::Reference => KmvStore::Tree(BTreeSet::new()),
        }
    }

    /// Rebuild from arbitrary (possibly unsorted, possibly duplicated)
    /// values, keeping at most `k`.
    fn from_values(k: usize, values: Vec<u64>) -> Self {
        match backend() {
            Backend::Arena => KmvStore::Slab(SortedSlab::from_values(k, values)),
            Backend::Reference => KmvStore::Tree(values.into_iter().collect()),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            KmvStore::Slab(s) => s.len(),
            KmvStore::Tree(t) => t.len(),
        }
    }

    #[inline]
    fn max(&self) -> Option<u64> {
        match self {
            KmvStore::Slab(s) => s.max(),
            KmvStore::Tree(t) => t.iter().next_back().copied(),
        }
    }

    /// Insert while below capacity; `false` on duplicates.
    fn insert_unsaturated(&mut self, v: u64) -> bool {
        match self {
            KmvStore::Slab(s) => s.insert_unsaturated(v),
            KmvStore::Tree(t) => t.insert(v),
        }
    }

    /// Insert into a saturated summary, evicting the maximum; `false`
    /// (no state change) on duplicates or non-improving values.
    #[inline]
    fn insert_evict(&mut self, v: u64) -> bool {
        match self {
            KmvStore::Slab(s) => s.insert_evict(v),
            KmvStore::Tree(t) => {
                let max = *t.iter().next_back().expect("non-empty");
                if v < max && t.insert(v) {
                    t.remove(&max);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn values(&self) -> Vec<u64> {
        match self {
            KmvStore::Slab(s) => s.values().to_vec(),
            KmvStore::Tree(t) => t.iter().copied().collect(),
        }
    }
}

/// A single bottom-k (KMV) distinct-count summary.
#[derive(Debug, Clone)]
pub struct Kmv {
    k: usize,
    hash: KWise,
    /// The k smallest distinct hash values seen so far.
    smallest: KmvStore,
    /// Heat telemetry: items offered to the summary (one add per batch
    /// on the hot path — same lifecycle as the other telemetry
    /// counters: merged by addition, zeroed by plain wire
    /// reconstruction, restored by the full-state sidecar).
    updates: u64,
    /// Telemetry: values displaced after saturation (not state — merged
    /// by addition, zeroed by wire reconstruction, never compared).
    evictions: u64,
    /// Telemetry: merge invocations absorbed.
    merges: u64,
}

impl Kmv {
    /// Create a summary keeping the `k` smallest hash values. Relative
    /// error is `O(1/√k)`; `k = 64` gives roughly ±12%.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "KMV needs k >= 2");
        Kmv {
            k,
            hash: pairwise(seed),
            smallest: KmvStore::new(k),
            updates: 0,
            evictions: 0,
            merges: 0,
        }
    }

    /// Observe one item (duplicates are free).
    #[inline]
    pub fn insert(&mut self, item: u64) {
        self.updates += 1;
        let h = self.hash.hash(item);
        if self.smallest.len() < self.k {
            self.smallest.insert_unsaturated(h);
        } else if self.smallest.insert_evict(h) {
            self.evictions += 1;
        }
    }

    /// Observe a chunk of items. State-identical to inserting the items
    /// one by one in order; amortizes the k-th-smallest lookup by caching
    /// the current cut-off across the chunk, so saturated summaries
    /// reject non-improving items with one hash evaluation and one
    /// compare.
    pub fn insert_batch(&mut self, items: &[u64]) {
        let mut rest = items;
        // Fill phase: until the summary saturates, every distinct hash
        // is kept and the cut-off moves with each insert.
        while self.smallest.len() < self.k {
            let Some((&item, tail)) = rest.split_first() else {
                return;
            };
            self.insert(item);
            rest = tail;
        }
        self.updates += rest.len() as u64;
        match &mut self.smallest {
            // Arena slab: the cut-off is the last slot, re-read after
            // each accepted insert at the cost of one resident load.
            KmvStore::Slab(slab) => {
                for &item in rest {
                    let h = self.hash.hash(item);
                    if slab.insert_evict(h) {
                        self.evictions += 1;
                    }
                }
            }
            KmvStore::Tree(tree) => {
                let mut max = *tree.iter().next_back().expect("non-empty");
                for &item in rest {
                    let h = self.hash.hash(item);
                    if h < max && tree.insert(h) {
                        tree.remove(&max);
                        self.evictions += 1;
                        max = *tree.iter().next_back().expect("non-empty");
                    }
                }
            }
        }
    }

    /// Estimate the number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        if self.smallest.len() < self.k {
            // Fewer than k distinct hashes: the summary is exact (up to
            // the negligible chance of 61-bit hash collisions).
            self.smallest.len() as f64
        } else {
            let vk = self.smallest.max().expect("non-empty") as f64;
            (self.k as f64 - 1.0) * MERSENNE_P as f64 / vk
        }
    }

    /// True iff the summary is still exact (saw fewer than k distinct
    /// hash values).
    pub fn is_exact(&self) -> bool {
        self.smallest.len() < self.k
    }

    /// The configured k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The rank hash (wire serialization).
    pub fn hash(&self) -> &KWise {
        &self.hash
    }

    /// The kept hash values, ascending (wire serialization).
    pub fn kept_values(&self) -> Vec<u64> {
        self.smallest.values()
    }

    /// Rebuild from parts (inverse of the accessors). Fails when the
    /// value set exceeds `k` or `k < 2`.
    pub fn from_parts(k: usize, hash: KWise, values: Vec<u64>) -> Result<Self, String> {
        if k < 2 {
            return Err("KMV needs k >= 2".into());
        }
        if values.len() > k {
            return Err(format!("{} kept values exceed k = {k}", values.len()));
        }
        Ok(Kmv {
            k,
            hash,
            smallest: KmvStore::from_values(k, values),
            updates: 0,
            evictions: 0,
            merges: 0,
        })
    }

    /// Merge a summary built with the *same `k` and seed* (bottom-k
    /// summaries are mergeable under set union — the property the
    /// BEM-style baseline and distributed deployments rely on). Panics
    /// if the configurations or hash functions differ.
    pub fn merge(&mut self, other: &Kmv) {
        assert_eq!(self.k, other.k, "Kmv merge requires identical configuration (k)");
        assert_eq!(
            self.hash.hash(0x5eed_c0de),
            other.hash.hash(0x5eed_c0de),
            "Kmv merge requires identical hash functions"
        );
        // Union of the kept sets, trimmed back to the k smallest; every
        // value dropped past k is one eviction (matching the pre-arena
        // pop-max loop).
        let mut union = self.smallest.values();
        union.extend(other.smallest.values());
        union.sort_unstable();
        union.dedup();
        self.evictions += union.len().saturating_sub(self.k) as u64;
        union.truncate(self.k);
        self.smallest = KmvStore::from_values(self.k, union);
        self.merges += 1 + other.merges;
        self.evictions += other.evictions;
        self.updates += other.updates;
    }

    /// Restore telemetry counters after wire reconstruction.
    /// [`Kmv::from_parts`] deliberately zeroes them (telemetry is not
    /// state); a full-state decode that wants the replica's finalize
    /// snapshot to match in-process ingestion re-applies the serialized
    /// counters with this.
    pub fn restore_telemetry(&mut self, updates: u64, evictions: u64, merges: u64) {
        self.updates = updates;
        self.evictions = evictions;
        self.merges = merges;
    }

    /// Heat counter: items offered to this summary so far.
    pub fn heat_updates(&self) -> u64 {
        self.updates
    }

    /// Telemetry snapshot (fill, capacity, evictions, merges).
    /// `updates` stays 0 here: the heat counter is surfaced through the
    /// space ledger, and the `"sketch"` event layout predates it (its
    /// bytes are part of the trace bit-neutrality contract).
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            updates: 0,
            fill: self.smallest.len() as u64,
            capacity: self.k as u64,
            evictions: self.evictions,
            prunes: 0,
            merges: self.merges,
        }
    }
}

impl SpaceUsage for Kmv {
    fn space_words(&self) -> usize {
        self.smallest.len() + self.hash.space_words()
    }

    /// Mirrors `space_words` exactly: kept values + rank hash. Heat
    /// lands on the `values` leaf (each accepted probe touches one
    /// resident entry).
    fn space_ledger(&self, node: &mut LedgerNode) {
        let values = node.child("values");
        values.words += self.smallest.len() as u64;
        values.updates += self.updates;
        values.touched_words += self.updates;
        node.leaf("hash", self.hash.space_words());
    }
}

/// Median-of-repetitions `L0` estimator with the Theorem 2.12 interface:
/// single pass, `Õ(1)` space, `(1 ± ε)` multiplicative error with high
/// probability for the configured `k` and repetition count.
#[derive(Debug, Clone)]
pub struct L0Estimator {
    reps: Vec<Kmv>,
}

impl L0Estimator {
    /// `reps` independent KMV summaries of size `k` each.
    pub fn new(k: usize, reps: usize, seed: u64) -> Self {
        assert!(reps >= 1, "need at least one repetition");
        let mut seq = SeedSequence::labeled(seed, "l0-estimator");
        L0Estimator {
            reps: (0..reps).map(|_| Kmv::new(k, seq.next_seed())).collect(),
        }
    }

    /// Default configuration giving comfortably better than the
    /// `(1 ± 1/2)` guarantee of Theorem 2.12: k = 64, 5 repetitions.
    pub fn with_default_accuracy(seed: u64) -> Self {
        L0Estimator::new(64, 5, seed)
    }

    /// Observe one item.
    #[inline]
    pub fn insert(&mut self, item: u64) {
        for r in &mut self.reps {
            r.insert(item);
        }
    }

    /// Observe a chunk of items: each repetition consumes the whole
    /// chunk in turn. Repetitions are independent, so the final state is
    /// identical to per-item insertion while the per-item dispatch cost
    /// is paid once per repetition per chunk.
    pub fn insert_batch(&mut self, items: &[u64]) {
        for r in &mut self.reps {
            r.insert_batch(items);
        }
    }

    /// Median estimate across repetitions.
    pub fn estimate(&self) -> f64 {
        let mut ests: Vec<f64> = self.reps.iter().map(Kmv::estimate).collect();
        ests.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        ests[ests.len() / 2]
    }

    /// Merge an estimator built with the same seed and shape (merges
    /// repetition-wise). Panics on mismatched shapes or seeds.
    pub fn merge(&mut self, other: &L0Estimator) {
        assert_eq!(
            self.reps.len(),
            other.reps.len(),
            "L0Estimator merge requires identical configuration (repetitions)"
        );
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            a.merge(b);
        }
    }

    /// The underlying KMV repetitions (wire serialization).
    pub fn repetitions(&self) -> &[Kmv] {
        &self.reps
    }

    /// Aggregate telemetry snapshot over all repetitions.
    pub fn stats(&self) -> SketchStats {
        let mut agg = SketchStats::default();
        for r in &self.reps {
            agg.absorb(r.stats());
        }
        agg
    }

    /// Restore per-repetition telemetry counters
    /// (`(updates, evictions, merges)` triples, repetition order) after
    /// wire reconstruction. Fails when the slice length disagrees with
    /// the repetition count.
    pub fn restore_telemetry(&mut self, counters: &[(u64, u64, u64)]) -> Result<(), String> {
        if counters.len() != self.reps.len() {
            return Err(format!(
                "{} telemetry entries for {} repetitions",
                counters.len(),
                self.reps.len()
            ));
        }
        for (rep, &(updates, evictions, merges)) in self.reps.iter_mut().zip(counters) {
            rep.restore_telemetry(updates, evictions, merges);
        }
        Ok(())
    }

    /// Rebuild from parts (inverse of [`L0Estimator::repetitions`]).
    /// Fails when empty or when the repetitions disagree on `k`.
    pub fn from_parts(reps: Vec<Kmv>) -> Result<Self, String> {
        if reps.is_empty() {
            return Err("need at least one repetition".into());
        }
        let k = reps[0].k();
        if reps.iter().any(|r| r.k() != k) {
            return Err("repetitions disagree on k".into());
        }
        Ok(L0Estimator { reps })
    }
}

impl SpaceUsage for L0Estimator {
    fn space_words(&self) -> usize {
        self.reps.iter().map(SpaceUsage::space_words).sum()
    }

    /// Repetitions accumulate into the same `values`/`hash` children
    /// (bounding the tree size while keeping the leaf sum exact).
    fn space_ledger(&self, node: &mut LedgerNode) {
        for rep in &self.reps {
            rep.space_ledger(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut kmv = Kmv::new(32, 1);
        for i in 0..20u64 {
            kmv.insert(i);
            kmv.insert(i); // duplicates are ignored
        }
        assert!(kmv.is_exact());
        assert_eq!(kmv.estimate(), 20.0);
    }

    #[test]
    fn duplicates_do_not_change_estimate() {
        let mut a = Kmv::new(16, 3);
        let mut b = Kmv::new(16, 3);
        for i in 0..1000u64 {
            a.insert(i);
            b.insert(i);
            b.insert(i);
            b.insert(i % 7);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn estimate_within_tolerance_large_stream() {
        let mut est = L0Estimator::new(128, 7, 42);
        let true_count = 50_000u64;
        for i in 0..true_count {
            est.insert(i.wrapping_mul(0x9e3779b9)); // arbitrary distinct keys
        }
        let e = est.estimate();
        let rel = (e - true_count as f64).abs() / true_count as f64;
        assert!(rel < 0.15, "relative error {rel} too large (est {e})");
    }

    #[test]
    fn theorem_2_12_interface_half_approximation() {
        // (1 ± 1/2)-approximation must hold across many seeds.
        for seed in 0..20u64 {
            let mut est = L0Estimator::with_default_accuracy(seed);
            let n = 10_000u64;
            for i in 0..n {
                est.insert(i * 31 + 7);
            }
            let e = est.estimate();
            assert!(
                e >= n as f64 * 0.5 && e <= n as f64 * 1.5,
                "seed {seed}: estimate {e} outside (1±1/2)·{n}"
            );
        }
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let est = L0Estimator::new(16, 3, 0);
        assert_eq!(est.estimate(), 0.0);
    }

    #[test]
    fn space_is_bounded_by_k_and_reps() {
        let mut est = L0Estimator::new(32, 4, 9);
        for i in 0..100_000u64 {
            est.insert(i);
        }
        // 4 reps × (≤32 kept values + pairwise hash of 2 words).
        assert!(est.space_words() <= 4 * (32 + 2));
    }

    #[test]
    fn monotone_in_distinct_count() {
        // More distinct elements should (statistically) raise the median
        // estimate; check a 10x gap is clearly resolved.
        let mut small = L0Estimator::new(64, 5, 11);
        let mut large = L0Estimator::new(64, 5, 11);
        for i in 0..1_000u64 {
            small.insert(i);
        }
        for i in 0..10_000u64 {
            large.insert(i);
        }
        assert!(large.estimate() > 4.0 * small.estimate());
    }

    #[test]
    #[should_panic(expected = "KMV needs k >= 2")]
    fn tiny_k_rejected() {
        let _ = Kmv::new(1, 0);
    }

    #[test]
    fn kmv_merge_equals_union_stream() {
        let mut left = Kmv::new(32, 9);
        let mut right = Kmv::new(32, 9);
        let mut both = Kmv::new(32, 9);
        for i in 0..3_000u64 {
            left.insert(i);
            both.insert(i);
        }
        for i in 1_500..5_000u64 {
            right.insert(i);
            both.insert(i);
        }
        left.merge(&right);
        assert_eq!(left.estimate(), both.estimate());
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn kmv_merge_rejects_seed_mismatch() {
        let mut a = Kmv::new(8, 1);
        let b = Kmv::new(8, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn kmv_merge_rejects_k_mismatch() {
        // Same seed, different k: the bottom-k cut-offs differ, so a
        // union of the kept sets is not the union-stream summary.
        let mut a = Kmv::new(8, 1);
        let b = Kmv::new(16, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn estimator_merge_rejects_rep_count_mismatch() {
        let mut a = L0Estimator::new(16, 3, 1);
        let b = L0Estimator::new(16, 4, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn estimator_merge_rejects_seed_mismatch() {
        let mut a = L0Estimator::new(16, 3, 1);
        let b = L0Estimator::new(16, 3, 2);
        a.merge(&b);
    }

    #[test]
    fn estimator_from_parts_roundtrips() {
        let mut est = L0Estimator::new(16, 3, 5);
        for i in 0..500u64 {
            est.insert(i);
        }
        let back = L0Estimator::from_parts(est.repetitions().to_vec()).unwrap();
        assert_eq!(est.estimate(), back.estimate());
        assert!(L0Estimator::from_parts(Vec::new()).is_err());
        let mixed = vec![Kmv::new(8, 1), Kmv::new(16, 1)];
        assert!(L0Estimator::from_parts(mixed).is_err());
    }

    #[test]
    fn stats_track_fill_evictions_and_merges() {
        let mut kmv = Kmv::new(8, 3);
        for i in 0..100u64 {
            kmv.insert(i);
        }
        let st = kmv.stats();
        assert_eq!(st.fill, 8);
        assert_eq!(st.capacity, 8);
        assert!(st.evictions > 0, "saturated summary must have evicted");
        assert_eq!(st.merges, 0);
        let other = Kmv::new(8, 3);
        kmv.merge(&other);
        assert_eq!(kmv.stats().merges, 1);
        // Telemetry is not state: wire reconstruction starts clean.
        let back = Kmv::from_parts(kmv.k(), kmv.hash().clone(), kmv.kept_values()).unwrap();
        assert_eq!(back.stats().evictions, 0);
        assert_eq!(back.stats().fill, 8);
    }

    #[test]
    fn heat_updates_count_offers_and_merge_adds() {
        let items: Vec<u64> = (0..500u64).collect();
        let mut scalar = Kmv::new(8, 3);
        for &i in &items {
            scalar.insert(i);
        }
        assert_eq!(scalar.heat_updates(), 500);
        // Batched ingestion counts identically, across chunk sizes that
        // straddle the fill phase.
        for chunk in [1usize, 3, 64, 500] {
            let mut batched = Kmv::new(8, 3);
            for block in items.chunks(chunk) {
                batched.insert_batch(block);
            }
            assert_eq!(batched.heat_updates(), 500, "chunk {chunk}");
        }
        // Merge is additive; wire reconstruction zeroes, restore
        // re-applies.
        let mut other = Kmv::new(8, 3);
        other.insert_batch(&items[..100]);
        scalar.merge(&other);
        assert_eq!(scalar.heat_updates(), 600);
        let mut back = Kmv::from_parts(scalar.k(), scalar.hash().clone(), scalar.kept_values()).unwrap();
        assert_eq!(back.heat_updates(), 0);
        back.restore_telemetry(600, 2, 1);
        assert_eq!(back.heat_updates(), 600);
        assert_eq!(back.stats().evictions, 2);
    }

    #[test]
    fn ledger_mirrors_space_words_exactly() {
        let mut est = L0Estimator::new(16, 3, 5);
        for i in 0..400u64 {
            est.insert(i);
        }
        let mut node = kcov_obs::LedgerNode::new();
        est.space_ledger(&mut node);
        assert_eq!(node.total_words(), est.space_words() as u64);
        assert_eq!(node.total_updates(), 3 * 400);
        // Reps aggregate into exactly two leaves.
        assert!(node.get("values").unwrap().is_leaf());
        assert!(node.get("hash").unwrap().is_leaf());
        assert_eq!(node.children().count(), 2);
    }

    #[test]
    fn estimator_merge_matches_union() {
        let mut left = L0Estimator::new(32, 3, 4);
        let mut right = L0Estimator::new(32, 3, 4);
        let mut both = L0Estimator::new(32, 3, 4);
        for i in 0..2_000u64 {
            left.insert(i * 2);
            both.insert(i * 2);
            right.insert(i * 2 + 1);
            both.insert(i * 2 + 1);
        }
        left.merge(&right);
        assert_eq!(left.estimate(), both.estimate());
    }
}
