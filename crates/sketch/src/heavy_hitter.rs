//! `F2` heavy hitters with approximate frequencies — Theorem 2.10.
//!
//! The paper cites BPTree / CountSieve-class algorithms ([14, 15, 18, 39])
//! for the guarantee: a single-pass, `Õ(1/φ)`-space algorithm that returns
//! every coordinate with `a⃗[i]² ≥ φ·F2(a⃗)` together with a `(1 ± 1/2)`-
//! approximation of its frequency.
//!
//! For insertion-only streams (the only kind this workspace feeds it) the
//! standard practical realization is CountSketch plus a bounded candidate
//! tracker: every arriving item is a candidate; the tracker keeps the
//! `O(1/φ)` candidates with the most arrivals *since tracking began*. A
//! true `φ`-heavy hitter arrives `≥ √(φ·F2)` times, out-counts the noise
//! tail between any two pruning rounds and therefore survives every
//! prune; at query time the candidates are re-estimated through the
//! sketch and thresholded against `F2`. Both estimates come from the one
//! CountSketch: the point query is the usual median-of-rows, and `F2` is
//! the median over rows of the row's summed squared counters (each row
//! *is* a width-bucketed AMS estimator, so no second sketch is needed on
//! the update path — the tracker itself touches no hash at all).

use std::collections::HashMap;

use kcov_hash::DetBuildHasher;
use kcov_obs::{LedgerNode, SketchStats};

use crate::arena::{backend, Backend, OaMap};
use crate::count_sketch::CountSketch;
use crate::space::SpaceUsage;

/// Candidate storage: the arena keeps one flat open-addressing table;
/// the reference backend keeps the pre-arena `std` map. Both hold the
/// same item → count multiset, and every order-sensitive consumer
/// (reports, wire encoding, the prune tie-break) canonicalizes by
/// sorting, so behavior is backend-invariant.
#[derive(Debug, Clone)]
enum CandidateStore {
    Oa(OaMap<i64>),
    Map(HashMap<u64, i64, DetBuildHasher>),
}

impl CandidateStore {
    fn with_capacity(n: usize) -> Self {
        match backend() {
            Backend::Arena => CandidateStore::Oa(OaMap::with_capacity(n)),
            Backend::Reference => CandidateStore::Map(HashMap::with_capacity_and_hasher(
                n,
                DetBuildHasher,
            )),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            CandidateStore::Oa(m) => m.len(),
            CandidateStore::Map(m) => m.len(),
        }
    }

    /// Add `delta` arrivals to `item`'s count, tracking it if new.
    #[inline]
    fn add(&mut self, item: u64, delta: i64) {
        match self {
            CandidateStore::Oa(m) => *m.get_or_insert_with(item, || 0) += delta,
            CandidateStore::Map(m) => *m.entry(item).or_insert(0) += delta,
        }
    }

    /// All entries, storage order (callers sort before any
    /// order-sensitive use).
    fn entries_unordered(&self) -> Vec<(u64, i64)> {
        match self {
            CandidateStore::Oa(m) => m.iter().map(|(k, &c)| (k, c)).collect(),
            CandidateStore::Map(m) => m.iter().map(|(&k, &c)| (k, c)).collect(),
        }
    }

    fn retain(&mut self, mut pred: impl FnMut(u64, i64) -> bool) {
        match self {
            CandidateStore::Oa(m) => m.retain(|k, c| pred(k, *c)),
            CandidateStore::Map(m) => m.retain(|&k, c| pred(k, *c)),
        }
    }
}

/// Configuration for [`F2HeavyHitter`].
#[derive(Debug, Clone)]
pub struct HeavyHitterConfig {
    /// Heaviness threshold `φ`: report items with `a⃗[i]² ≥ φ·F2`.
    pub phi: f64,
    /// CountSketch rows (median repetitions).
    pub rows: usize,
    /// CountSketch width multiplier: width = `width_factor / φ`, so each
    /// row's additive error is `O(√(φ·F2 / width_factor))`.
    pub width_factor: f64,
    /// Candidate-list capacity multiplier: keep `capacity_factor / φ`
    /// candidates.
    pub capacity_factor: f64,
    /// Report slack: an item is reported when
    /// `est² ≥ report_slack · φ · F̂2`. Values below 1 compensate for the
    /// `(1 ± 1/2)` error of both estimates so no true heavy hitter is
    /// missed (precision is recovered by the caller's own thresholds).
    pub report_slack: f64,
}

impl HeavyHitterConfig {
    /// A sound default for threshold `phi`.
    pub fn for_phi(phi: f64) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        HeavyHitterConfig {
            phi,
            rows: 5,
            width_factor: 32.0,
            capacity_factor: 8.0,
            report_slack: 0.125,
        }
    }
}

/// A reported heavy item with its approximate frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyItem {
    /// The item (vector coordinate).
    pub item: u64,
    /// `(1 ± 1/2)`-approximate frequency `a⃗[item]`.
    pub est: i64,
}

/// Single-pass `φ`-heavy-hitter tracker for insertion-only streams
/// (Theorem 2.10 interface).
#[derive(Debug, Clone)]
pub struct F2HeavyHitter {
    config: HeavyHitterConfig,
    sketch: CountSketch,
    /// item → exact arrivals since tracking began. Counts never consult
    /// the sketch, so the tracker state is a pure function of the
    /// *multiset deltas* of the insertion sequence between prunes —
    /// which is what makes batched ingestion and shard merging
    /// state-identical to serial insertion (the deterministic hasher
    /// keeps bucket placement reproducible across processes too).
    candidates: CandidateStore,
    capacity: usize,
    items_seen: u64,
    /// Telemetry: pruning rounds fired (not state — merged by addition,
    /// zeroed by wire reconstruction, never compared).
    prunes: u64,
    /// Telemetry: candidate entries dropped by pruning.
    evictions: u64,
    /// Telemetry: merge invocations absorbed.
    merges: u64,
}

impl F2HeavyHitter {
    /// Create a tracker for threshold `config.phi`.
    pub fn new(config: HeavyHitterConfig, seed: u64) -> Self {
        let width = ((config.width_factor / config.phi).ceil() as usize).clamp(8, 1 << 22);
        let capacity = ((config.capacity_factor / config.phi).ceil() as usize).clamp(8, 1 << 22);
        F2HeavyHitter {
            sketch: CountSketch::new(config.rows, width, seed ^ 0x5ca1ab1e),
            candidates: CandidateStore::with_capacity(capacity + capacity / 2 + 1),
            capacity,
            config,
            items_seen: 0,
            prunes: 0,
            evictions: 0,
            merges: 0,
        }
    }

    /// Convenience constructor with defaults for `phi`.
    pub fn for_phi(phi: f64, seed: u64) -> Self {
        F2HeavyHitter::new(HeavyHitterConfig::for_phi(phi), seed)
    }

    /// Observe one occurrence of `item`.
    #[inline]
    pub fn insert(&mut self, item: u64) {
        self.items_seen += 1;
        self.sketch.insert(item);
        self.candidates.add(item, 1);
        if self.candidates.len() > self.capacity + self.capacity / 2 {
            self.prune();
        }
    }

    /// Observe a chunk of items. The sketch is linear (updates commute)
    /// and the tracker never consults it, so feeding the whole chunk to
    /// the sketch first and then walking the tracker sequentially lands
    /// in a state bit-identical to per-item [`F2HeavyHitter::insert`]:
    /// prune trigger points depend only on the arrival order of
    /// *distinct* items, which the sequential tracker loop preserves.
    pub fn insert_batch(&mut self, items: &[u64]) {
        self.sketch.insert_batch(items);
        self.items_seen += items.len() as u64;
        let high_water = self.capacity + self.capacity / 2;
        for &item in items {
            self.candidates.add(item, 1);
            if self.candidates.len() > high_water {
                self.prune();
            }
        }
    }

    /// Drop the candidates with the fewest arrivals, keeping `capacity`
    /// of them. Ties at the cut are broken by item id, never by map
    /// iteration order: the surviving set must be a pure function of the
    /// insertion sequence or the batched ingestion engine's
    /// bit-identical-state guarantee breaks.
    fn prune(&mut self) {
        let keep = self.capacity;
        self.prunes += 1;
        let before = self.candidates.len();
        // One map scan serves both the value-cut selection and the
        // tie-break below (prunes fire every Θ(capacity) distinct
        // arrivals on candidate-churning streams, so the scan count is
        // on the hot path).
        let entries = self.candidates.entries_unordered();
        let mut counts: Vec<i64> = entries.iter().map(|&(_, c)| c).collect();
        // k-th largest value as the cut (a value, so order-independent).
        let cut_idx = counts.len() - keep;
        counts.select_nth_unstable(cut_idx);
        let cut = counts[cut_idx];
        let above = entries.iter().filter(|&&(_, c)| c > cut).count();
        let mut tied: Vec<u64> = entries
            .iter()
            .filter(|&&(_, c)| c == cut)
            .map(|&(item, _)| item)
            .collect();
        tied.sort_unstable();
        tied.truncate(keep.saturating_sub(above));
        self.candidates
            .retain(|item, c| c > cut || tied.binary_search(&item).is_ok());
        self.evictions += (before - self.candidates.len()) as u64;
    }

    /// Estimate of `F2` of the full stream (median of per-row AMS
    /// estimates derived from the CountSketch table — see
    /// [`CountSketch::f2_estimate`]).
    pub fn f2_estimate(&self) -> f64 {
        self.sketch.f2_estimate()
    }

    /// `(1 ± 1/2)`-approximate frequency of an arbitrary item.
    pub fn frequency_estimate(&self, item: u64) -> i64 {
        self.sketch.query(item)
    }

    /// All tracked items whose re-estimated frequency passes the
    /// (slacked) `φ` threshold, with their approximate frequencies,
    /// sorted by decreasing estimate.
    pub fn heavy_hitters(&self) -> Vec<HeavyItem> {
        let f2 = self.f2_estimate();
        let thr = self.config.report_slack * self.config.phi * f2;
        let mut out: Vec<HeavyItem> = self
            .candidates
            .entries_unordered()
            .into_iter()
            .map(|(item, _)| HeavyItem {
                item,
                est: self.sketch.query(item),
            })
            .filter(|h| (h.est as f64) * (h.est as f64) >= thr)
            .collect();
        out.sort_by(|a, b| b.est.cmp(&a.est).then(a.item.cmp(&b.item)));
        out
    }

    /// Total stream length observed.
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// The configured threshold `φ`.
    pub fn phi(&self) -> f64 {
        self.config.phi
    }

    /// The full configuration (wire serialization).
    pub fn config(&self) -> &HeavyHitterConfig {
        &self.config
    }

    /// The CountSketch frequency sketch (wire serialization).
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }

    /// Candidate entries as `(item, arrivals since tracking began)`,
    /// sorted by item so the encoding is canonical (wire serialization).
    pub fn candidate_entries(&self) -> Vec<(u64, i64)> {
        let mut out = self.candidates.entries_unordered();
        out.sort_unstable();
        out
    }

    /// Rebuild from parts (inverse of the accessors). Fails when the
    /// sketch shape disagrees with what `config` dictates or the
    /// candidate list exceeds its high-water mark.
    pub fn from_parts(
        config: HeavyHitterConfig,
        sketch: CountSketch,
        candidates: Vec<(u64, i64)>,
        items_seen: u64,
    ) -> Result<Self, String> {
        if !(config.phi > 0.0 && config.phi <= 1.0) {
            return Err("phi must be in (0, 1]".into());
        }
        let width = ((config.width_factor / config.phi).ceil() as usize).clamp(8, 1 << 22);
        let capacity = ((config.capacity_factor / config.phi).ceil() as usize).clamp(8, 1 << 22);
        if sketch.rows() != config.rows || sketch.width() != width {
            return Err("CountSketch shape disagrees with the configuration".into());
        }
        if candidates.len() > capacity + capacity / 2 {
            return Err(format!(
                "{} candidates exceed the high-water mark {}",
                candidates.len(),
                capacity + capacity / 2
            ));
        }
        let mut store = CandidateStore::with_capacity(capacity + capacity / 2 + 1);
        for (item, count) in candidates {
            store.add(item, count);
        }
        Ok(F2HeavyHitter {
            config,
            sketch,
            candidates: store,
            capacity,
            items_seen,
            prunes: 0,
            evictions: 0,
            merges: 0,
        })
    }

    /// Merge a tracker built with the same configuration and seed over a
    /// *disjoint stream shard*. The CountSketch is linear, so its merged
    /// state (and therefore both the point queries and the `F2`
    /// estimate) is bit-identical to single-stream ingestion. The
    /// candidate tracker merges by *summing arrival counts* over the
    /// union of tracked keys — exactly what serial ingestion would have
    /// counted whenever neither side pruned the key — then prunes by the
    /// same value-cut/item-id rule as serial ingestion if over the
    /// high-water mark. Summation is commutative and associative, so
    /// merging is too; the result is bit-identical to serial ingestion
    /// whenever the candidate list never overflowed. Panics on
    /// configuration or seed mismatch.
    pub fn merge(&mut self, other: &Self) {
        let cfg = |c: &HeavyHitterConfig| {
            (
                c.phi.to_bits(),
                c.rows,
                c.width_factor.to_bits(),
                c.capacity_factor.to_bits(),
                c.report_slack.to_bits(),
            )
        };
        assert_eq!(
            cfg(&self.config),
            cfg(&other.config),
            "F2HeavyHitter merge requires identical configuration"
        );
        self.sketch.merge(&other.sketch);
        self.items_seen += other.items_seen;
        for (item, count) in other.candidates.entries_unordered() {
            self.candidates.add(item, count);
        }
        if self.candidates.len() > self.capacity + self.capacity / 2 {
            self.prune();
        }
        self.merges += 1 + other.merges;
        self.prunes += other.prunes;
        self.evictions += other.evictions;
    }

    /// Restore telemetry counters after wire reconstruction.
    /// [`F2HeavyHitter::from_parts`] deliberately zeroes them (telemetry
    /// is not state); a full-state decode that wants the replica's
    /// finalize snapshot to match in-process ingestion re-applies the
    /// serialized counters with this.
    pub fn restore_telemetry(
        &mut self,
        prunes: u64,
        evictions: u64,
        merges: u64,
        sketch_updates: u64,
    ) {
        self.prunes = prunes;
        self.evictions = evictions;
        self.merges = merges;
        self.sketch.restore_telemetry(sketch_updates);
    }

    /// Telemetry snapshot for the candidate tracker (fill/capacity are
    /// the candidate list, not the linear sketch — that has its own
    /// [`CountSketch::stats`]).
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            updates: self.items_seen,
            fill: self.candidates.len() as u64,
            capacity: self.capacity as u64,
            evictions: self.evictions,
            prunes: self.prunes,
            merges: self.merges,
        }
    }
}

impl SpaceUsage for F2HeavyHitter {
    fn space_words(&self) -> usize {
        // Each candidate entry holds an item and an arrival count.
        self.sketch.space_words() + 2 * self.candidates.len()
    }

    /// Mirrors `space_words` exactly: the CountSketch subtree plus the
    /// candidate tracker (2 words per entry). Tracker heat is
    /// `items_seen` — each arrival touches one candidate entry.
    fn space_ledger(&self, node: &mut LedgerNode) {
        self.sketch.space_ledger(node.child("countsketch"));
        let cand = node.child("candidates");
        cand.words += 2 * self.candidates.len() as u64;
        cand.updates += self.items_seen;
        cand.touched_words += self.items_seen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dominant_item_found() {
        let mut hh = F2HeavyHitter::for_phi(0.1, 1);
        for _ in 0..1000 {
            hh.insert(7);
        }
        for i in 0..200u64 {
            hh.insert(1000 + i);
        }
        let out = hh.heavy_hitters();
        assert!(out.iter().any(|h| h.item == 7), "dominant item missing");
        let est = out.iter().find(|h| h.item == 7).unwrap().est;
        assert!((500..=1500).contains(&est), "estimate {est} outside (1±1/2)");
    }

    #[test]
    fn all_phi_heavy_items_recovered() {
        // Theorem 2.10 recall: every i with a[i]^2 >= phi*F2 is returned.
        let mut hh = F2HeavyHitter::for_phi(0.05, 42);
        // Three heavy items (freq 400) + 2000 noise items (freq 1).
        // F2 = 3*160000 + 2000 = 482000; 400^2/482000 = 0.33 >= 0.05.
        for item in [1u64, 2, 3] {
            for _ in 0..400 {
                hh.insert(item);
            }
        }
        for i in 0..2000u64 {
            hh.insert(100 + i);
        }
        let out = hh.heavy_hitters();
        for item in [1u64, 2, 3] {
            assert!(out.iter().any(|h| h.item == item), "missing heavy item {item}");
        }
    }

    #[test]
    fn interleaved_arrival_still_recovers() {
        // Heavy items interleaved with noise (worst case for candidate
        // eviction).
        let mut hh = F2HeavyHitter::for_phi(0.08, 9);
        for round in 0..500u64 {
            hh.insert(1); // heavy
            hh.insert(10_000 + round); // fresh noise each round
        }
        let out = hh.heavy_hitters();
        assert!(out.iter().any(|h| h.item == 1));
    }

    #[test]
    fn no_false_heavy_on_uniform_stream() {
        // Uniform stream: no item has a[i]^2 >= 0.3*F2 (every frequency
        // is 3, F2 = 2700, bar = 810 i.e. frequency >= 28.5). The report
        // may contain low-slack extras (the theorem only promises
        // recall), but nothing may pass the *strict* threshold.
        let mut hh = F2HeavyHitter::for_phi(0.3, 5);
        for i in 0..300u64 {
            for _ in 0..3 {
                hh.insert(i);
            }
        }
        let f2 = hh.f2_estimate();
        let strict: Vec<_> = hh
            .heavy_hitters()
            .into_iter()
            .filter(|h| (h.est as f64) * (h.est as f64) >= 0.3 * f2)
            .collect();
        assert!(strict.is_empty(), "false strict heavy hitters: {strict:?}");
    }

    #[test]
    fn candidate_list_stays_bounded() {
        let mut hh = F2HeavyHitter::for_phi(0.1, 3);
        for i in 0..50_000u64 {
            hh.insert(i);
        }
        let cap = ((8.0f64 / 0.1).ceil() as usize).clamp(8, 1 << 22);
        assert!(
            hh.candidates.len() <= 2 * cap,
            "candidates grew to {}",
            hh.candidates.len()
        );
    }

    #[test]
    fn space_is_o_of_one_over_phi() {
        let tight = F2HeavyHitter::for_phi(0.5, 1).space_words();
        let loose = F2HeavyHitter::for_phi(0.01, 1).space_words();
        assert!(loose > tight, "smaller phi needs more space");
        // width = 8/phi dominates: phi=0.01 => 800 * rows counters.
        assert!(loose < 50 * (8.0f64 / 0.01) as usize);
    }

    #[test]
    fn items_seen_counts_stream_length() {
        let mut hh = F2HeavyHitter::for_phi(0.2, 1);
        for i in 0..123u64 {
            hh.insert(i % 3);
        }
        assert_eq!(hh.items_seen(), 123);
    }

    #[test]
    fn empty_tracker_reports_nothing() {
        let hh = F2HeavyHitter::for_phi(0.1, 1);
        assert!(hh.heavy_hitters().is_empty());
    }

    #[test]
    fn ledger_mirrors_space_words_and_carries_heat() {
        let mut hh = F2HeavyHitter::for_phi(0.1, 4);
        for i in 0..1_000u64 {
            hh.insert(i % 97);
        }
        let mut node = kcov_obs::LedgerNode::new();
        hh.space_ledger(&mut node);
        assert_eq!(node.total_words(), hh.space_words() as u64);
        let cand = node.get("candidates").unwrap();
        assert_eq!(cand.words, 2 * hh.candidates.len() as u64);
        assert_eq!(cand.updates, 1_000);
        assert_eq!(cand.touched_words, 1_000);
        // CountSketch subtree carries the inner sketch's own heat.
        let cs = node.get("countsketch").unwrap();
        assert_eq!(cs.total_words(), hh.sketch().space_words() as u64);
        assert_eq!(cs.total_updates(), hh.sketch().heat_updates());
    }

    #[test]
    #[should_panic(expected = "phi must be in (0, 1]")]
    fn invalid_phi_rejected() {
        let _ = HeavyHitterConfig::for_phi(0.0);
    }

    #[test]
    fn batch_insert_state_identical_to_serial() {
        // The tentpole contract: insert_batch must land in a state
        // bit-identical to per-item insert at every batch size, across
        // prune boundaries.
        let items: Vec<u64> = (0..5_000u64).map(|i| i * 31 % 1_700).collect();
        let mut serial = F2HeavyHitter::for_phi(0.05, 77);
        for &item in &items {
            serial.insert(item);
        }
        for chunk in [1usize, 7, 64, 999, items.len()] {
            let mut batched = F2HeavyHitter::for_phi(0.05, 77);
            for block in items.chunks(chunk) {
                batched.insert_batch(block);
            }
            assert_eq!(batched.candidate_entries(), serial.candidate_entries(), "chunk {chunk}");
            assert_eq!(batched.sketch().table(), serial.sketch().table(), "chunk {chunk}");
            assert_eq!(batched.items_seen(), serial.items_seen());
            assert_eq!(batched.f2_estimate().to_bits(), serial.f2_estimate().to_bits());
        }
    }

    #[test]
    fn f2_estimate_tracks_truth() {
        // Single item of frequency f: every row holds ±f in one bucket,
        // so each row's sum of squares is exactly f².
        let mut hh = F2HeavyHitter::for_phi(0.1, 4);
        for _ in 0..50 {
            hh.insert(9);
        }
        assert_eq!(hh.f2_estimate(), 2500.0);
        // Mixed stream: within AMS-style tolerance of the exact F2.
        let mut hh = F2HeavyHitter::for_phi(0.01, 2024);
        for i in 0..500u64 {
            for _ in 0..10 {
                hh.insert(i);
            }
        }
        let truth = 500.0 * 100.0;
        let est = hh.f2_estimate();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.25, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn merge_matches_serial_report() {
        // Shards whose distinct-item count stays within the candidate
        // capacity: the merged tracker is bit-identical to serial
        // ingestion (same candidate keys and counts, same linear sketch).
        let proto = F2HeavyHitter::for_phi(0.05, 13);
        let mut left = proto.clone();
        let mut right = proto.clone();
        let mut serial = proto.clone();
        for round in 0..300u64 {
            for &(item, heavy) in &[(1u64, true), (2, round % 3 == 0), (40 + round % 50, false)] {
                if heavy || round % 2 == 0 {
                    serial.insert(item);
                    if round < 150 {
                        left.insert(item);
                    } else {
                        right.insert(item);
                    }
                }
            }
        }
        left.merge(&right);
        assert_eq!(left.items_seen(), serial.items_seen());
        assert_eq!(left.f2_estimate().to_bits(), serial.f2_estimate().to_bits());
        assert_eq!(left.heavy_hitters(), serial.heavy_hitters());
        assert_eq!(left.candidate_entries().len(), serial.candidate_entries().len());
    }

    #[test]
    fn merge_is_commutative() {
        let proto = F2HeavyHitter::for_phi(0.1, 21);
        let mut a = proto.clone();
        let mut b = proto.clone();
        for i in 0..400u64 {
            a.insert(i % 37);
            b.insert(i % 53);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.heavy_hitters(), ba.heavy_hitters());
        assert_eq!(ab.candidate_entries(), ba.candidate_entries());
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_config_mismatch() {
        let mut a = F2HeavyHitter::for_phi(0.1, 1);
        let b = F2HeavyHitter::for_phi(0.2, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let mut a = F2HeavyHitter::for_phi(0.1, 1);
        let b = F2HeavyHitter::for_phi(0.1, 2);
        a.merge(&b);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut hh = F2HeavyHitter::for_phi(0.1, 17);
        for i in 0..500u64 {
            hh.insert(i % 11);
        }
        let back = F2HeavyHitter::from_parts(
            hh.config().clone(),
            hh.sketch().clone(),
            hh.candidate_entries(),
            hh.items_seen(),
        )
        .unwrap();
        assert_eq!(hh.heavy_hitters(), back.heavy_hitters());
        assert_eq!(hh.candidate_entries(), back.candidate_entries());
        assert_eq!(hh.items_seen(), back.items_seen());
        // Mismatched sketch shape is rejected.
        let wrong = CountSketch::new(2, 8, 1);
        assert!(F2HeavyHitter::from_parts(hh.config().clone(), wrong, Vec::new(), 0).is_err());
    }

    #[test]
    fn stats_track_candidate_churn() {
        let mut hh = F2HeavyHitter::for_phi(0.1, 3);
        for i in 0..50_000u64 {
            hh.insert(i);
        }
        let st = hh.stats();
        assert_eq!(st.updates, 50_000);
        assert!(st.prunes > 0, "distinct-heavy stream must prune");
        assert!(st.evictions >= st.prunes * st.capacity / 2);
        assert!(st.fill <= st.capacity + st.capacity / 2);
        let other = F2HeavyHitter::for_phi(0.1, 3);
        hh.merge(&other);
        assert_eq!(hh.stats().merges, 1);
        // Wire reconstruction starts telemetry from zero.
        let back = F2HeavyHitter::from_parts(
            hh.config().clone(),
            hh.sketch().clone(),
            hh.candidate_entries(),
            hh.items_seen(),
        )
        .unwrap();
        assert_eq!(back.stats().prunes, 0);
        assert_eq!(back.stats().updates, 50_000);
    }

    #[test]
    fn results_sorted_by_estimate() {
        let mut hh = F2HeavyHitter::for_phi(0.01, 8);
        for (item, f) in [(1u64, 300), (2u64, 600), (3u64, 450)] {
            for _ in 0..f {
                hh.insert(item);
            }
        }
        let out = hh.heavy_hitters();
        for w in out.windows(2) {
            assert!(w[0].est >= w[1].est);
        }
    }
}
