//! Property-based tests of sketch invariants: linearity/merge laws,
//! order-insensitivity, and accuracy contracts under random streams.

use proptest::prelude::*;

use kcov_sketch::{AmsF2, Bjkst, CountMin, CountSketch, Kmv, SpaceUsage};

/// Random small stream: (item, multiplicity) pairs.
fn stream_strategy() -> impl Strategy<Value = Vec<(u64, u8)>> {
    prop::collection::vec((0u64..500, 1u8..5), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KMV is order-insensitive: any permutation yields the same state.
    #[test]
    fn kmv_order_insensitive(mut stream in stream_strategy(), seed in 0u64..1000) {
        let mut forward = Kmv::new(16, seed);
        for &(item, mult) in &stream {
            for _ in 0..mult {
                forward.insert(item);
            }
        }
        stream.reverse();
        let mut backward = Kmv::new(16, seed);
        for &(item, mult) in &stream {
            for _ in 0..mult {
                backward.insert(item);
            }
        }
        prop_assert_eq!(forward.estimate(), backward.estimate());
    }

    /// KMV merge law: merge(A, B) estimates the union stream.
    #[test]
    fn kmv_merge_law(a in stream_strategy(), b in stream_strategy(), seed in 0u64..1000) {
        let mut left = Kmv::new(16, seed);
        let mut right = Kmv::new(16, seed);
        let mut union = Kmv::new(16, seed);
        for &(item, _) in &a {
            left.insert(item);
            union.insert(item);
        }
        for &(item, _) in &b {
            right.insert(item);
            union.insert(item);
        }
        left.merge(&right);
        prop_assert_eq!(left.estimate(), union.estimate());
    }

    /// BJKST merge law mirrors KMV's.
    #[test]
    fn bjkst_merge_law(a in stream_strategy(), b in stream_strategy(), seed in 0u64..1000) {
        let mut left = Bjkst::new(16, seed);
        let mut right = Bjkst::new(16, seed);
        let mut union = Bjkst::new(16, seed);
        for &(item, _) in &a {
            left.insert(item);
            union.insert(item);
        }
        for &(item, _) in &b {
            right.insert(item);
            union.insert(item);
        }
        left.merge(&right);
        prop_assert_eq!(left.estimate(), union.estimate());
    }

    /// CountSketch linearity: sketch(A) + sketch(B) = sketch(A ++ B),
    /// exactly, for point queries.
    #[test]
    fn count_sketch_linearity(a in stream_strategy(), b in stream_strategy(), seed in 0u64..1000) {
        let mut sa = CountSketch::new(3, 32, seed);
        let mut sb = CountSketch::new(3, 32, seed);
        let mut sab = CountSketch::new(3, 32, seed);
        for &(item, mult) in &a {
            sa.update(item, mult as i64);
            sab.update(item, mult as i64);
        }
        for &(item, mult) in &b {
            sb.update(item, mult as i64);
            sab.update(item, mult as i64);
        }
        sa.merge(&sb);
        for probe in 0..50u64 {
            prop_assert_eq!(sa.query(probe * 11), sab.query(probe * 11));
        }
    }

    /// CountMin never underestimates, on arbitrary streams.
    #[test]
    fn count_min_upper_bound(stream in stream_strategy(), seed in 0u64..1000) {
        let mut cm = CountMin::new(4, 64, seed);
        let mut truth = std::collections::HashMap::new();
        for &(item, mult) in &stream {
            cm.insert(item, mult as u64);
            *truth.entry(item).or_insert(0u64) += mult as u64;
        }
        for (&item, &freq) in &truth {
            prop_assert!(cm.query(item) >= freq);
        }
    }

    /// AMS F2 on a single-item stream is exact (f² with any sign).
    #[test]
    fn ams_single_item_exact(freq in 1i64..100, seed in 0u64..1000, item in 0u64..1000) {
        let mut sk = AmsF2::new(3, 4, seed);
        sk.update(item, freq);
        prop_assert!((sk.estimate() - (freq * freq) as f64).abs() < 1e-9);
    }

    /// Space accounting is monotone under insertions for KMV.
    #[test]
    fn kmv_space_monotone(stream in stream_strategy(), seed in 0u64..1000) {
        let mut kmv = Kmv::new(32, seed);
        let mut last = kmv.space_words();
        for &(item, _) in &stream {
            kmv.insert(item);
            let now = kmv.space_words();
            prop_assert!(now >= last || now + 1 >= last);
            last = now;
        }
    }
}
