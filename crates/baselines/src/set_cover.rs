//! Greedy set cover — the dual problem the paper's introduction and
//! Table 1 footnotes keep in view (its streaming space trade-off is
//! `Θ(mn/α²)` for estimation, Assadi–Khanna–Li [7], contrasted with
//! `Θ(m/α²)` here).
//!
//! Offline `H_n`-approximate greedy, plus the partial-cover variant
//! (smallest prefix covering a target fraction), both driven by the
//! same lazy evaluation as [`crate::greedy`]. Used by the examples and
//! as a utility for interpreting max-cover outputs ("how many sets
//! until 90% coverage?").

use std::collections::BinaryHeap;

use kcov_stream::SetSystem;

/// Result of a (partial) set-cover run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverResult {
    /// Chosen set indices in pick order.
    pub chosen: Vec<usize>,
    /// Elements covered by the chosen sets.
    pub covered: usize,
    /// Whether every coverable element is covered.
    pub complete: bool,
}

/// Greedy set cover of all *coverable* elements (elements in no set are
/// ignored — a cover of them cannot exist).
pub fn greedy_set_cover(system: &SetSystem) -> SetCoverResult {
    partial_set_cover(system, 1.0)
}

/// Smallest greedy prefix covering at least `fraction` of the coverable
/// elements (`fraction ∈ [0, 1]`).
pub fn partial_set_cover(system: &SetSystem, fraction: f64) -> SetCoverResult {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let coverable = {
        let mut seen = vec![false; system.num_elements()];
        for s in system.sets() {
            for &e in s {
                seen[e as usize] = true;
            }
        }
        seen.iter().filter(|&&x| x).count()
    };
    let target = (coverable as f64 * fraction).ceil() as usize;

    let mut covered = vec![false; system.num_elements()];
    let mut count = 0usize;
    let mut chosen = Vec::new();
    let mut heap: BinaryHeap<(usize, usize)> = (0..system.num_sets())
        .map(|i| (system.set(i).len(), i))
        .collect();
    while count < target {
        let mut picked = None;
        while let Some((stale, i)) = heap.pop() {
            if stale == 0 {
                break;
            }
            let fresh = system.set(i).iter().filter(|&&e| !covered[e as usize]).count();
            if fresh == stale || heap.peek().is_none_or(|&(top, _)| fresh >= top) {
                if fresh > 0 {
                    picked = Some(i);
                }
                break;
            }
            heap.push((fresh, i));
        }
        match picked {
            Some(i) => {
                for &e in system.set(i) {
                    if !covered[e as usize] {
                        covered[e as usize] = true;
                        count += 1;
                    }
                }
                chosen.push(i);
            }
            None => break,
        }
    }
    SetCoverResult {
        chosen,
        covered: count,
        complete: count >= coverable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::uniform_incidence;

    #[test]
    fn covers_everything_coverable() {
        let ss = SetSystem::new(6, vec![vec![0, 1], vec![2, 3], vec![3, 4]]);
        // Element 5 is uncoverable.
        let r = greedy_set_cover(&ss);
        assert!(r.complete);
        assert_eq!(r.covered, 5);
        assert!(r.chosen.len() <= 3);
    }

    #[test]
    fn partial_cover_stops_early() {
        let ss = SetSystem::new(10, vec![
            vec![0, 1, 2, 3, 4, 5, 6],
            vec![7],
            vec![8],
            vec![9],
        ]);
        let r = partial_set_cover(&ss, 0.7);
        assert_eq!(r.chosen, vec![0]);
        assert_eq!(r.covered, 7);
        assert!(!r.complete);
    }

    #[test]
    fn greedy_cover_size_is_reasonable_on_random() {
        for seed in 0..5u64 {
            let ss = uniform_incidence(100, 50, 0.1, seed);
            let r = greedy_set_cover(&ss);
            assert!(r.complete || r.covered > 0);
            // Each chosen set must have contributed something.
            assert!(r.chosen.len() <= 100);
            let dedup: std::collections::HashSet<_> = r.chosen.iter().collect();
            assert_eq!(dedup.len(), r.chosen.len());
        }
    }

    #[test]
    fn zero_fraction_chooses_nothing() {
        let ss = SetSystem::new(4, vec![vec![0, 1]]);
        let r = partial_set_cover(&ss, 0.0);
        assert!(r.chosen.is_empty());
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn empty_system() {
        let ss = SetSystem::new(5, vec![]);
        let r = greedy_set_cover(&ss);
        assert!(r.complete);
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn ln_n_quality_on_structured_instance() {
        // Optimal cover = 2 disjoint halves; greedy uses at most
        // ~ln(n)·2 sets even with tempting overlaps.
        let mut sets = vec![
            (0u32..50).collect::<Vec<_>>(),
            (50u32..100).collect::<Vec<_>>(),
        ];
        for i in 0..18 {
            sets.push((i * 5..i * 5 + 10).map(|x| x as u32).collect());
        }
        let ss = SetSystem::new(100, sets);
        let r = greedy_set_cover(&ss);
        assert!(r.complete);
        assert!(r.chosen.len() <= 10, "greedy used {} sets", r.chosen.len());
    }
}
