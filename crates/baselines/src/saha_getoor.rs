//! Saha & Getoor (reference [37] of the paper) — the first streaming
//! algorithm for maximum coverage ("multi-topic blog-watch"), set
//! arrival, swap-based, constant-factor (4-approximation in their
//! analysis), `Õ(n)` space.
//!
//! Maintain a current solution of at most `k` sets. On the arrival of a
//! set `S`: if the solution is not full, take it; otherwise swap it in
//! when the coverage gained justifies evicting the currently
//! least-contributing set (we use the standard rule: swap when
//! `|S \ C|` exceeds the evictee's exclusive contribution plus a
//! `|C|/(2k)` improvement margin, the thresholded-swap of their §3).

use std::collections::HashMap;

use kcov_sketch::SpaceUsage;
use kcov_stream::SetSystem;

use crate::CoverResult;

/// Single-pass set-arrival swap streaming.
#[derive(Debug, Clone)]
pub struct SwapStreaming {
    k: usize,
    /// Chosen set indices with their member lists.
    solution: Vec<(usize, Vec<u32>)>,
    /// covered element → multiplicity within the solution.
    covered: HashMap<u32, u32>,
    peak_words: usize,
}

impl SwapStreaming {
    /// Create a swap-streaming run with budget `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        SwapStreaming {
            k,
            solution: Vec::with_capacity(k),
            covered: HashMap::new(),
            peak_words: 0,
        }
    }

    /// Current exact coverage of the maintained solution.
    pub fn coverage(&self) -> usize {
        self.covered.len()
    }

    /// Exclusive contribution of solution slot `slot`: elements covered
    /// by it alone.
    fn exclusive(&self, slot: usize) -> usize {
        self.solution[slot]
            .1
            .iter()
            .filter(|e| self.covered.get(e) == Some(&1))
            .count()
    }

    /// Observe the arrival of a complete set.
    pub fn observe_set(&mut self, index: usize, members: &[u32]) {
        let gain = members.iter().filter(|e| !self.covered.contains_key(e)).count();
        if self.solution.len() < self.k {
            if gain > 0 || !members.is_empty() {
                self.insert(index, members);
            }
        } else if gain > 0 {
            // Cheapest eviction candidate.
            let (victim, victim_excl) = (0..self.solution.len())
                .map(|s| (s, self.exclusive(s)))
                .min_by_key(|&(_, ex)| ex)
                .expect("solution non-empty");
            let margin = self.covered.len() / (2 * self.k);
            if gain > victim_excl + margin {
                self.evict(victim);
                self.insert(index, members);
            }
        }
        self.peak_words = self.peak_words.max(self.space_words());
    }

    fn insert(&mut self, index: usize, members: &[u32]) {
        for &e in members {
            *self.covered.entry(e).or_insert(0) += 1;
        }
        self.solution.push((index, members.to_vec()));
    }

    fn evict(&mut self, slot: usize) {
        let (_, members) = self.solution.swap_remove(slot);
        for e in members {
            if let Some(c) = self.covered.get_mut(&e) {
                *c -= 1;
                if *c == 0 {
                    self.covered.remove(&e);
                }
            }
        }
    }

    /// The final solution.
    pub fn finish(&self) -> CoverResult {
        CoverResult {
            chosen: self.solution.iter().map(|&(i, _)| i).collect(),
            estimated_coverage: self.covered.len() as f64,
        }
    }

    /// Peak space over the run (words).
    pub fn peak_space_words(&self) -> usize {
        self.peak_words
    }

    /// Convenience: run over a materialized system in set order.
    pub fn run(system: &SetSystem, k: usize) -> CoverResult {
        let mut alg = SwapStreaming::new(k);
        for i in 0..system.num_sets() {
            alg.observe_set(i, system.set(i));
        }
        alg.finish()
    }
}

impl SpaceUsage for SwapStreaming {
    fn space_words(&self) -> usize {
        self.solution.iter().map(|(_, s)| s.len() + 1).sum::<usize>() + 2 * self.covered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::coverage_of;
    use kcov_stream::gen::{few_large, uniform_incidence};

    #[test]
    fn fills_up_then_swaps_for_improvement() {
        let ss = SetSystem::new(12, vec![
            vec![0],            // tiny, taken (slot fill)
            vec![1],            // tiny, taken
            vec![2, 3, 4, 5],   // large: must displace a tiny
            vec![6, 7, 8, 9, 10, 11], // larger still: displaces the other tiny
        ]);
        let r = SwapStreaming::run(&ss, 2);
        assert!(r.chosen.contains(&2));
        assert!(r.chosen.contains(&3));
        assert_eq!(r.estimated_coverage, 10.0);
    }

    #[test]
    fn constant_factor_vs_greedy() {
        for seed in 0..6u64 {
            let ss = uniform_incidence(150, 60, 0.05, seed);
            let k = 5;
            let g = crate::greedy::greedy_max_cover(&ss, k).coverage as f64;
            let r = SwapStreaming::run(&ss, k);
            assert!(
                r.estimated_coverage >= g / 4.5,
                "seed {seed}: swap {} greedy {g}",
                r.estimated_coverage
            );
        }
    }

    #[test]
    fn reported_coverage_is_exact() {
        let ss = few_large(400, 50, 3, 80, 2);
        let r = SwapStreaming::run(&ss, 5);
        assert_eq!(coverage_of(&ss, &r.chosen) as f64, r.estimated_coverage);
    }

    #[test]
    fn solution_never_exceeds_k() {
        let ss = uniform_incidence(80, 100, 0.1, 4);
        let mut alg = SwapStreaming::new(3);
        for i in 0..ss.num_sets() {
            alg.observe_set(i, ss.set(i));
            assert!(alg.solution.len() <= 3);
        }
    }

    #[test]
    fn empty_sets_do_not_break() {
        let ss = SetSystem::new(5, vec![vec![], vec![0, 1], vec![]]);
        let r = SwapStreaming::run(&ss, 2);
        assert_eq!(r.estimated_coverage, 2.0);
    }
}
