//! Stochastic greedy (a.k.a. lazier-than-lazy greedy; Mirzasoleiman et
//! al., AAAI 2015) — the standard fast offline baseline: each round
//! evaluates only a random sample of `(m/k)·ln(1/ε)` sets and takes the
//! sample's best marginal. Achieves `(1 − 1/e − ε)` in expectation with
//! `O(m·ln(1/ε))` marginal evaluations total, independent of `k`.
//!
//! Included because the paper's experimental successors routinely
//! compare against it, and because `SmallSet`'s offline stage can use
//! it in place of full greedy when sub-instances grow.

use kcov_hash::SplitMix64;
use kcov_stream::SetSystem;

use crate::CoverResult;

/// Stochastic greedy with accuracy parameter `epsilon ∈ (0, 1)`.
pub fn stochastic_greedy(system: &SetSystem, k: usize, epsilon: f64, seed: u64) -> CoverResult {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    let m = system.num_sets();
    if m == 0 || k == 0 {
        return CoverResult {
            chosen: Vec::new(),
            estimated_coverage: 0.0,
        };
    }
    let mut rng = SplitMix64::new(seed);
    let sample_size = (((m as f64 / k as f64) * (1.0 / epsilon).ln()).ceil() as usize)
        .clamp(1, m);
    let mut covered = vec![false; system.num_elements()];
    let mut taken = vec![false; m];
    let mut chosen = Vec::with_capacity(k.min(m));
    let mut coverage = 0usize;

    for _ in 0..k.min(m) {
        let mut best: Option<(usize, usize)> = None; // (gain, set)
        for _ in 0..sample_size {
            let cand = rng.next_below(m as u64) as usize;
            if taken[cand] {
                continue;
            }
            let gain = system
                .set(cand)
                .iter()
                .filter(|&&e| !covered[e as usize])
                .count();
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, cand));
            }
        }
        match best {
            Some((gain, cand)) if gain > 0 => {
                taken[cand] = true;
                chosen.push(cand);
                for &e in system.set(cand) {
                    covered[e as usize] = true;
                }
                coverage += gain;
            }
            _ => continue, // unlucky sample; try the next round
        }
    }
    CoverResult {
        chosen,
        estimated_coverage: coverage as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::coverage_of;
    use kcov_stream::gen::{planted_cover, uniform_incidence};

    #[test]
    fn reported_coverage_is_exact() {
        let ss = uniform_incidence(120, 40, 0.08, 2);
        let r = stochastic_greedy(&ss, 6, 0.1, 7);
        assert_eq!(coverage_of(&ss, &r.chosen) as f64, r.estimated_coverage);
        assert!(r.chosen.len() <= 6);
    }

    #[test]
    fn tracks_full_greedy_closely() {
        let mut ratios = Vec::new();
        for seed in 0..8u64 {
            let ss = uniform_incidence(200, 60, 0.06, seed);
            let g = crate::greedy::greedy_max_cover(&ss, 8).coverage as f64;
            let s = stochastic_greedy(&ss, 8, 0.1, 100 + seed).estimated_coverage;
            ratios.push(s / g.max(1.0));
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 0.85, "stochastic greedy mean ratio {mean}");
    }

    #[test]
    fn finds_planted_cover_mostly() {
        let inst = planted_cover(1000, 100, 10, 0.8, 20, 5);
        let r = stochastic_greedy(&inst.system, 10, 0.05, 3);
        assert!(
            r.estimated_coverage >= inst.planted_coverage as f64 * 0.6,
            "coverage {} vs planted {}",
            r.estimated_coverage,
            inst.planted_coverage
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ss = uniform_incidence(100, 30, 0.1, 1);
        let a = stochastic_greedy(&ss, 5, 0.2, 9);
        let b = stochastic_greedy(&ss, 5, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_inputs() {
        let empty = SetSystem::new(3, vec![]);
        assert_eq!(stochastic_greedy(&empty, 2, 0.1, 1).estimated_coverage, 0.0);
        let ss = SetSystem::new(3, vec![vec![0, 1, 2]]);
        assert_eq!(stochastic_greedy(&ss, 0, 0.1, 1).estimated_coverage, 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon in (0,1)")]
    fn bad_epsilon() {
        let ss = SetSystem::new(2, vec![vec![0]]);
        let _ = stochastic_greedy(&ss, 1, 0.0, 1);
    }
}
