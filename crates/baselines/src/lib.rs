//! Offline and streaming baselines for maximum k-coverage.
//!
//! These populate the "other rows" of the paper's Table 1 and provide
//! ground truth:
//!
//! * [`exact`] — branch-and-bound exact `Max k-Cover` (ground truth on
//!   small/medium instances).
//! * [`greedy`] — the classic lazy greedy of Nemhauser–Wolsey–Fisher
//!   (reference [35]), the `1/(1−1/e)` offline baseline; also the
//!   `O(1)`-approximate offline solver invoked inside the paper's
//!   `SmallSet` subroutine.
//! * [`sieve`] — Sieve-Streaming (Badanidiyuru et al. [9]): set-arrival,
//!   `Õ(n)`-space (stores covered-element sets), 2-approximation.
//! * [`mcgregor_vu`] — McGregor & Vu [34]: the set-arrival `(2 + ε)`
//!   thresholding algorithm, and their `Õ(m/ε²)`-space *edge-arrival*
//!   element-sampling + offline-greedy algorithm (Table 1, row 3).
//! * [`saha_getoor`] — Saha & Getoor [37]: the swap-based set-arrival
//!   streaming algorithm (the first streaming max-cover algorithm).
//! * [`bateni`] — Bateni–Esfandiari–Mirrokni-style [12] edge-arrival
//!   algorithm: one mergeable bottom-k coverage sketch per set, offline
//!   greedy over sketches; `Õ(m)` space, constant factor.
//!
//! Every streaming baseline implements `SpaceUsage` so Table 1 can be
//! regenerated with *measured* space.

pub mod bateni;
pub mod exact;
pub mod greedy;
pub mod local_search;
pub mod mcgregor_vu;
pub mod saha_getoor;
pub mod set_cover;
pub mod sieve;
pub mod stochastic_greedy;

pub use bateni::SketchedGreedy;
pub use exact::max_cover_exact;
pub use greedy::{greedy_max_cover, GreedyResult};
pub use local_search::local_search_max_cover;
pub use mcgregor_vu::{mv_set_arrival, MvEdgeArrival};
pub use saha_getoor::SwapStreaming;
pub use set_cover::{greedy_set_cover, partial_set_cover, SetCoverResult};
pub use sieve::SieveStreaming;
pub use stochastic_greedy::stochastic_greedy;

/// A k-cover produced by any algorithm: chosen set indices and the
/// algorithm's own estimate of their coverage (exact for offline
/// algorithms, an estimate for sketched ones).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverResult {
    /// Chosen set indices (at most k).
    pub chosen: Vec<usize>,
    /// The algorithm's estimate of the chosen coverage.
    pub estimated_coverage: f64,
}
