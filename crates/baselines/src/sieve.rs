//! Sieve-Streaming — Badanidiyuru, Mirzasoleiman, Karbasi & Krause
//! (reference [9] of the paper): single-pass, *set-arrival*,
//! 2-approximation (more precisely `1/2 − ε`) for monotone submodular
//! maximization, specialized here to coverage.
//!
//! Maintains a geometric grid of guesses `v ≈ OPT`; for each guess it
//! keeps a solution of at most `k` sets, adding an arriving set when its
//! marginal coverage is at least `(v/2 − current)/(k − |chosen|)`.
//! For the coverage function the "oracle" is realized by storing the
//! covered-element set per guess — `Õ(n)` space per guess, which is the
//! `Õ(n)` row of Table 1 (and why set-arrival algorithms do not give
//! edge-arrival bounds in terms of `m`).

use std::collections::HashSet;

use kcov_sketch::SpaceUsage;
use kcov_stream::SetSystem;

use crate::CoverResult;

/// One threshold state of the sieve.
#[derive(Debug, Clone)]
struct SieveState {
    /// OPT guess `v`.
    v: f64,
    chosen: Vec<usize>,
    covered: HashSet<u32>,
}

/// Single-pass set-arrival Sieve-Streaming for `Max k-Cover`.
#[derive(Debug, Clone)]
pub struct SieveStreaming {
    k: usize,
    one_plus_eps: f64,
    /// Largest singleton set size seen so far.
    max_singleton: usize,
    states: Vec<SieveState>,
    peak_words: usize,
}

impl SieveStreaming {
    /// Create a sieve with solution size `k` and grid resolution `ε`.
    pub fn new(k: usize, epsilon: f64) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        SieveStreaming {
            k,
            one_plus_eps: 1.0 + epsilon,
            max_singleton: 0,
            states: Vec::new(),
            peak_words: 0,
        }
    }

    /// Observe the arrival of a complete set (set-arrival model).
    pub fn observe_set(&mut self, index: usize, members: &[u32]) {
        if members.len() > self.max_singleton {
            self.max_singleton = members.len();
            self.refresh_grid();
        }
        for st in &mut self.states {
            if st.chosen.len() >= self.k {
                continue;
            }
            let gain = members.iter().filter(|e| !st.covered.contains(e)).count();
            let need = (st.v / 2.0 - st.covered.len() as f64) / (self.k - st.chosen.len()) as f64;
            if gain as f64 >= need && gain > 0 {
                st.chosen.push(index);
                st.covered.extend(members.iter().copied());
            }
        }
        self.peak_words = self.peak_words.max(self.space_words());
    }

    /// Re-instantiate the guess grid
    /// `{(1+ε)^j : max_singleton ≤ (1+ε)^j ≤ 2·k·max_singleton}`,
    /// keeping surviving states and discarding out-of-range ones.
    fn refresh_grid(&mut self) {
        let lo = self.max_singleton as f64;
        let hi = 2.0 * self.k as f64 * self.max_singleton as f64;
        self.states.retain(|st| st.v >= lo);
        let mut v = 1.0f64;
        while v < lo {
            v *= self.one_plus_eps;
        }
        while v <= hi {
            let exists = self.states.iter().any(|st| (st.v - v).abs() < 1e-9);
            if !exists {
                self.states.push(SieveState {
                    v,
                    chosen: Vec::new(),
                    covered: HashSet::new(),
                });
            }
            v *= self.one_plus_eps;
        }
    }

    /// Best solution across all guesses.
    pub fn finish(&self) -> CoverResult {
        self.states
            .iter()
            .max_by_key(|st| st.covered.len())
            .map(|st| CoverResult {
                chosen: st.chosen.clone(),
                estimated_coverage: st.covered.len() as f64,
            })
            .unwrap_or(CoverResult {
                chosen: Vec::new(),
                estimated_coverage: 0.0,
            })
    }

    /// Peak space over the whole run (words).
    pub fn peak_space_words(&self) -> usize {
        self.peak_words
    }

    /// Convenience: run over a materialized system in set order.
    pub fn run(system: &SetSystem, k: usize, epsilon: f64) -> CoverResult {
        let mut sieve = SieveStreaming::new(k, epsilon);
        for i in 0..system.num_sets() {
            sieve.observe_set(i, system.set(i));
        }
        sieve.finish()
    }
}

impl SpaceUsage for SieveStreaming {
    fn space_words(&self) -> usize {
        self.states
            .iter()
            .map(|st| st.covered.len() + st.chosen.len() + 1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::coverage_of;
    use kcov_stream::gen::{uniform_incidence, zipf_set_sizes};

    #[test]
    fn covers_at_least_half_of_greedy_on_random_instances() {
        for seed in 0..6u64 {
            let ss = uniform_incidence(120, 40, 0.08, seed);
            let k = 5;
            let sieve = SieveStreaming::run(&ss, k, 0.1);
            let greedy = crate::greedy::greedy_max_cover(&ss, k);
            // Sieve guarantees (1/2 - eps)·OPT >= (1/2 - eps)·greedy.
            assert!(
                sieve.estimated_coverage >= 0.4 * greedy.coverage as f64,
                "seed {seed}: sieve {} greedy {}",
                sieve.estimated_coverage,
                greedy.coverage
            );
        }
    }

    #[test]
    fn reported_sets_achieve_reported_coverage() {
        let ss = zipf_set_sizes(300, 50, 80, 1.0, 3);
        let r = SieveStreaming::run(&ss, 6, 0.2);
        assert_eq!(
            coverage_of(&ss, &r.chosen) as f64,
            r.estimated_coverage,
            "sieve coverage must be exact"
        );
        assert!(r.chosen.len() <= 6);
    }

    #[test]
    fn empty_stream() {
        let ss = SetSystem::new(10, vec![]);
        let r = SieveStreaming::run(&ss, 3, 0.1);
        assert_eq!(r.estimated_coverage, 0.0);
        assert!(r.chosen.is_empty());
    }

    #[test]
    fn single_set_stream() {
        let ss = SetSystem::new(10, vec![vec![0, 1, 2]]);
        let r = SieveStreaming::run(&ss, 2, 0.1);
        assert_eq!(r.estimated_coverage, 3.0);
        assert_eq!(r.chosen, vec![0]);
    }

    #[test]
    fn space_grows_with_coverage_not_stream_length() {
        let ss = uniform_incidence(100, 200, 0.05, 9);
        let mut sieve = SieveStreaming::new(4, 0.2);
        for i in 0..ss.num_sets() {
            sieve.observe_set(i, ss.set(i));
        }
        // Per-state coverage <= n, grid has O(log(k·n)/eps) states.
        let states = sieve.states.len();
        assert!(
            sieve.peak_space_words() <= states * (100 + 4 + 1),
            "peak {} states {states}",
            sieve.peak_space_words()
        );
    }

    #[test]
    #[should_panic(expected = "epsilon in (0,1)")]
    fn bad_epsilon_rejected() {
        let _ = SieveStreaming::new(3, 1.5);
    }
}
