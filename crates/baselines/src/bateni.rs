//! BEM-style edge-arrival sketched greedy — after Bateni, Esfandiari &
//! Mirrokni (reference [12] of the paper): the first constant-factor,
//! `Õ(m)`-space algorithm for edge-arrival max cover. Their construction
//! keeps a small *mergeable* distinct-element sketch per set and runs
//! greedy over the sketches after the pass.
//!
//! We realize the per-set sketch as a shared-hash bottom-t (KMV) summary:
//! with a single pairwise hash `h` over elements, the bottom-t values of
//! a union are computable from the bottom-t values of the parts, so
//! greedy's marginal-gain queries work on merged summaries. Space is
//! `O(m·t)` words; the coverage estimates carry `O(1/√t)` relative error,
//! giving a constant-factor guarantee overall.

use std::collections::BTreeSet;

use kcov_hash::{pairwise, KWise, RangeHash, MERSENNE_P};
use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

use crate::CoverResult;

/// Shared-hash bottom-t summary of a set of elements.
#[derive(Debug, Clone, Default)]
struct BottomT {
    vals: BTreeSet<u64>,
}

impl BottomT {
    fn insert(&mut self, h: u64, t: usize) {
        if self.vals.len() < t {
            self.vals.insert(h);
        } else {
            let max = *self.vals.iter().next_back().expect("non-empty");
            if h < max && self.vals.insert(h) {
                self.vals.remove(&max);
            }
        }
    }

    fn merge_into(&self, acc: &mut BTreeSet<u64>, t: usize) {
        for &v in &self.vals {
            acc.insert(v);
        }
        while acc.len() > t {
            let max = *acc.iter().next_back().expect("non-empty");
            acc.remove(&max);
        }
    }
}

/// Estimate distinct count from a bottom-t value set.
fn estimate(vals: &BTreeSet<u64>, t: usize) -> f64 {
    if vals.len() < t {
        vals.len() as f64
    } else {
        let vk = *vals.iter().next_back().expect("non-empty") as f64;
        (t as f64 - 1.0) * MERSENNE_P as f64 / vk
    }
}

/// Edge-arrival sketched greedy: one bottom-t summary per set, offline
/// greedy over merged summaries.
#[derive(Debug)]
pub struct SketchedGreedy {
    t: usize,
    hash: KWise,
    per_set: Vec<BottomT>,
}

impl SketchedGreedy {
    /// `m` sets, summaries of size `t` (relative error `O(1/√t)`).
    pub fn new(m: usize, t: usize, seed: u64) -> Self {
        assert!(t >= 2, "summary size must be >= 2");
        SketchedGreedy {
            t,
            hash: pairwise(seed ^ 0xbe11),
            per_set: vec![BottomT::default(); m],
        }
    }

    /// Observe one `(set, element)` edge (any order, duplicates free).
    #[inline]
    pub fn observe(&mut self, edge: Edge) {
        let h = self.hash.hash(edge.elem as u64);
        self.per_set[edge.set as usize].insert(h, self.t);
    }

    /// After the pass: greedy over sketches. Each round merges every
    /// candidate's summary into the current solution summary and picks
    /// the largest estimated union.
    pub fn finish(&self, k: usize) -> CoverResult {
        let m = self.per_set.len();
        let mut chosen: Vec<usize> = Vec::with_capacity(k.min(m));
        let mut current: BTreeSet<u64> = BTreeSet::new();
        let mut taken = vec![false; m];
        for _ in 0..k.min(m) {
            let base = estimate(&current, self.t);
            let mut best: Option<(f64, usize, BTreeSet<u64>)> = None;
            for (i, summary) in self.per_set.iter().enumerate() {
                if taken[i] || summary.vals.is_empty() {
                    continue;
                }
                let mut union = current.clone();
                summary.merge_into(&mut union, self.t);
                let est = estimate(&union, self.t);
                if best.as_ref().is_none_or(|(b, _, _)| est > *b) {
                    best = Some((est, i, union));
                }
            }
            match best {
                Some((est, i, union)) if est > base + 1e-9 => {
                    chosen.push(i);
                    taken[i] = true;
                    current = union;
                }
                _ => break,
            }
        }
        CoverResult {
            estimated_coverage: estimate(&current, self.t),
            chosen,
        }
    }

    /// Merge another instance built with the same `m`, `t` and seed —
    /// per-set bottom-t summaries merge under union, so shards of an
    /// edge stream can be sketched independently (e.g. one worker per
    /// partition) and combined before the greedy stage. Panics on
    /// shape/seed mismatch.
    pub fn merge(&mut self, other: &SketchedGreedy) {
        assert_eq!(self.per_set.len(), other.per_set.len(), "m mismatch");
        assert_eq!(self.t, other.t, "summary size mismatch");
        assert_eq!(
            self.hash.hash(0x5eed_c0de),
            other.hash.hash(0x5eed_c0de),
            "merge requires identical element hashes"
        );
        for (mine, theirs) in self.per_set.iter_mut().zip(&other.per_set) {
            for &v in &theirs.vals {
                mine.vals.insert(v);
            }
            while mine.vals.len() > self.t {
                let max = *mine.vals.iter().next_back().expect("non-empty");
                mine.vals.remove(&max);
            }
        }
    }

    /// Run over an edge stream.
    pub fn run(m: usize, t: usize, seed: u64, edges: &[Edge], k: usize) -> CoverResult {
        let mut alg = SketchedGreedy::new(m, t, seed);
        for &e in edges {
            alg.observe(e);
        }
        alg.finish(k)
    }
}

impl SpaceUsage for SketchedGreedy {
    fn space_words(&self) -> usize {
        self.per_set.iter().map(|b| b.vals.len()).sum::<usize>() + self.hash.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{planted_cover, uniform_incidence};
    use kcov_stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

    #[test]
    fn exact_on_small_sets() {
        // Sets smaller than t: summaries are exact, greedy is exact
        // greedy.
        let ss = SetSystem::new(20, vec![vec![0, 1, 2], vec![2, 3], vec![4, 5, 6, 7]]);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(1));
        let r = SketchedGreedy::run(3, 64, 7, &edges, 2);
        assert_eq!(r.estimated_coverage, 7.0);
        assert_eq!(coverage_of(&ss, &r.chosen), 7);
    }

    #[test]
    fn constant_factor_on_planted() {
        let inst = planted_cover(2000, 80, 8, 0.8, 30, 3);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(9));
        let r = SketchedGreedy::run(80, 48, 5, &edges, 8);
        let real = coverage_of(&inst.system, &r.chosen) as f64;
        let opt = inst.planted_coverage as f64;
        assert!(real >= opt / 3.0, "real coverage {real} vs opt {opt}");
        // The estimate itself tracks the real coverage.
        assert!(
            (r.estimated_coverage - real).abs() / real < 0.5,
            "estimate {} vs real {real}",
            r.estimated_coverage
        );
    }

    #[test]
    fn order_invariant() {
        let ss = uniform_incidence(300, 40, 0.05, 5);
        let e1 = edge_stream(&ss, ArrivalOrder::SetContiguous);
        let e2 = edge_stream(&ss, ArrivalOrder::Shuffled(3));
        let r1 = SketchedGreedy::run(40, 32, 11, &e1, 5);
        let r2 = SketchedGreedy::run(40, 32, 11, &e2, 5);
        assert_eq!(r1.chosen, r2.chosen);
        assert_eq!(r1.estimated_coverage, r2.estimated_coverage);
    }

    #[test]
    fn space_linear_in_m_times_t() {
        let ss = uniform_incidence(500, 60, 0.2, 2);
        let edges = edge_stream(&ss, ArrivalOrder::RoundRobin);
        let mut alg = SketchedGreedy::new(60, 16, 1);
        for &e in &edges {
            alg.observe(e);
        }
        assert!(alg.space_words() <= 60 * 16 + 8);
    }

    #[test]
    fn empty_stream() {
        let r = SketchedGreedy::run(10, 8, 1, &[], 3);
        assert!(r.chosen.is_empty());
        assert_eq!(r.estimated_coverage, 0.0);
    }

    #[test]
    fn sharded_merge_equals_single_pass() {
        let ss = uniform_incidence(400, 30, 0.08, 7);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(5));
        let mid = edges.len() / 2;
        let mut a = SketchedGreedy::new(30, 24, 13);
        let mut b = SketchedGreedy::new(30, 24, 13);
        let mut whole = SketchedGreedy::new(30, 24, 13);
        for &e in &edges[..mid] {
            a.observe(e);
            whole.observe(e);
        }
        for &e in &edges[mid..] {
            b.observe(e);
            whole.observe(e);
        }
        a.merge(&b);
        let ra = a.finish(5);
        let rw = whole.finish(5);
        assert_eq!(ra.chosen, rw.chosen);
        assert_eq!(ra.estimated_coverage, rw.estimated_coverage);
    }

    #[test]
    #[should_panic(expected = "identical element hashes")]
    fn merge_rejects_seed_mismatch() {
        let mut a = SketchedGreedy::new(5, 8, 1);
        let b = SketchedGreedy::new(5, 8, 2);
        a.merge(&b);
    }
}
