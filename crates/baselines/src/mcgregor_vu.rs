//! McGregor & Vu (reference [34] of the paper) — two baselines:
//!
//! 1. [`mv_set_arrival`]: the `(2 + ε)`-approximate set-arrival
//!    thresholding algorithm (`Õ(k/ε³)` space, Table 1 row 5): guess
//!    `v ≈ OPT` on a geometric grid; take an arriving set while fewer
//!    than `k` are chosen whenever its marginal coverage is `≥ v/(2k)`.
//! 2. [`mv_edge_arrival`]: their `Õ(m/ε²)`-space *edge-arrival*
//!    algorithm (Table 1 row 3): guess `z ≈ OPT`; subsample elements at
//!    rate `p_z ∝ k·log m/(ε²·z)`; store the induced sub-instance and run
//!    offline greedy on it after the pass, rescaling by `1/p_z`. This is
//!    exactly the element-sampling lemma (the paper's Lemma 2.5) turned
//!    into an algorithm, and is the `O(1)`-approximation the paper's
//!    Theorem 3.1 composes with for constant α.

use std::collections::HashSet;

use kcov_hash::{pairwise, RangeHash, SeedSequence, MERSENNE_P};
use kcov_sketch::SpaceUsage;
use kcov_stream::{Edge, SetSystem};

use crate::greedy::greedy_max_cover;
use crate::CoverResult;

/// Set-arrival `(2 + ε)` thresholding (McGregor–Vu).
pub fn mv_set_arrival(system: &SetSystem, k: usize, epsilon: f64) -> CoverResult {
    assert!(k >= 1, "k must be positive");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    let max_singleton = system.max_set_size();
    if max_singleton == 0 {
        return CoverResult {
            chosen: Vec::new(),
            estimated_coverage: 0.0,
        };
    }
    // Guess grid: v in [max_singleton, k·max_singleton].
    let mut guesses = Vec::new();
    let mut v = max_singleton as f64;
    let top = (k * max_singleton) as f64;
    while v <= top * (1.0 + epsilon) {
        guesses.push(v);
        v *= 1.0 + epsilon;
    }
    let mut best = CoverResult {
        chosen: Vec::new(),
        estimated_coverage: 0.0,
    };
    for v in guesses {
        let mut covered: HashSet<u32> = HashSet::new();
        let mut chosen = Vec::new();
        for i in 0..system.num_sets() {
            if chosen.len() >= k {
                break;
            }
            let gain = system.set(i).iter().filter(|e| !covered.contains(e)).count();
            if gain as f64 >= v / (2.0 * k as f64) {
                chosen.push(i);
                covered.extend(system.set(i).iter().copied());
            }
        }
        if covered.len() as f64 > best.estimated_coverage {
            best = CoverResult {
                chosen,
                estimated_coverage: covered.len() as f64,
            };
        }
    }
    best
}

/// One OPT-guess lane of the edge-arrival algorithm.
#[derive(Debug)]
struct GuessLane {
    /// The OPT guess `z` (kept for experiment logging/debugging).
    #[allow(dead_code)]
    z: f64,
    /// Element-sampling threshold: keep `e` iff `hash(e) < keep_below`.
    keep_below: u64,
    /// Effective sampling probability.
    p: f64,
    /// Stored sampled edges (capped).
    edges: Vec<Edge>,
    overflowed: bool,
}

/// McGregor–Vu style edge-arrival streaming max cover via element
/// sampling + offline greedy (`Õ(m/ε²)` space, constant factor).
#[derive(Debug)]
pub struct MvEdgeArrival {
    n: usize,
    m: usize,
    k: usize,
    hash: kcov_hash::KWise,
    lanes: Vec<GuessLane>,
    cap_per_lane: usize,
    /// Expected sampled coverage for the correct guess; also the
    /// acceptance floor guarding against wild rescaling of tiny counts.
    target_sample: f64,
}

impl MvEdgeArrival {
    /// Create the algorithm for a stream with `n` elements, `m` sets,
    /// solution size `k` and accuracy `epsilon`.
    pub fn new(n: usize, m: usize, k: usize, epsilon: f64, seed: u64) -> Self {
        assert!(n >= 1 && m >= 1 && k >= 1, "need n, m, k >= 1");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        let mut seq = SeedSequence::labeled(seed, "mv-edge-arrival");
        let logm = ((m as f64).ln()).max(1.0);
        // Target: p_z·z ≈ c·k·log m / ε² sampled covered elements.
        let target_sample = (4.0 * k as f64 * logm / (epsilon * epsilon)).max(8.0);
        let mut lanes = Vec::new();
        let mut z = k as f64; // OPT >= k whenever k nonempty disjoint-ish sets exist; start low anyway
        z = z.max(1.0);
        while z <= 2.0 * n as f64 {
            let p = (target_sample / z).min(1.0);
            lanes.push(GuessLane {
                z,
                keep_below: (p * MERSENNE_P as f64) as u64,
                p,
                edges: Vec::new(),
                overflowed: false,
            });
            z *= 2.0;
        }
        // Per-lane storage cap: Õ(m/ε²) overall.
        let cap_per_lane = ((8.0 * m as f64 * logm / (epsilon * epsilon)) as usize).max(64);
        MvEdgeArrival {
            n,
            m,
            k,
            hash: pairwise(seq.next_seed()),
            lanes,
            cap_per_lane,
            target_sample,
        }
    }

    /// Observe one `(set, element)` edge.
    pub fn observe(&mut self, edge: Edge) {
        let h = self.hash.hash(edge.elem as u64);
        for lane in &mut self.lanes {
            if lane.overflowed || h >= lane.keep_below {
                continue;
            }
            if lane.edges.len() >= self.cap_per_lane {
                lane.overflowed = true;
                lane.edges.clear();
                lane.edges.shrink_to_fit();
            } else {
                lane.edges.push(edge);
            }
        }
    }

    /// Finish the pass: greedy on every stored sub-instance, rescale,
    /// return the best accepted estimate.
    pub fn finish(&self) -> CoverResult {
        let mut best = CoverResult {
            chosen: Vec::new(),
            estimated_coverage: 0.0,
        };
        for lane in &self.lanes {
            if lane.overflowed {
                continue;
            }
            let sub = SetSystem::from_edges(self.n, self.m, &lane.edges);
            let g = greedy_max_cover(&sub, self.k);
            // Acceptance floor: for the correct z the sampled greedy
            // coverage concentrates near p·OPT ≈ target; reject guesses
            // whose counts are too small to rescale meaningfully (they
            // would otherwise explode by 1/p). Lanes with p = 1 are
            // exact and always accepted.
            let accepted = lane.p >= 1.0 || (g.coverage as f64) >= self.target_sample / 8.0;
            if !accepted {
                continue;
            }
            let est = (g.coverage as f64 / lane.p).min(self.n as f64);
            if est > best.estimated_coverage {
                best = CoverResult {
                    chosen: g.chosen,
                    estimated_coverage: est,
                };
            }
        }
        best
    }

    /// Run over an edge stream.
    pub fn run(
        n: usize,
        m: usize,
        k: usize,
        epsilon: f64,
        seed: u64,
        edges: &[Edge],
    ) -> CoverResult {
        let mut alg = MvEdgeArrival::new(n, m, k, epsilon, seed);
        for &e in edges {
            alg.observe(e);
        }
        alg.finish()
    }
}

impl SpaceUsage for MvEdgeArrival {
    fn space_words(&self) -> usize {
        // Each stored edge is one word (two u32s); plus the shared hash.
        self.lanes.iter().map(|l| l.edges.len()).sum::<usize>() + self.hash.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{planted_cover, uniform_incidence};
    use kcov_stream::{coverage_of, edge_stream, ArrivalOrder};

    #[test]
    fn set_arrival_two_approx_on_random() {
        for seed in 0..5u64 {
            let ss = uniform_incidence(150, 40, 0.06, seed);
            let k = 5;
            let greedy = greedy_max_cover(&ss, k).coverage as f64;
            let r = mv_set_arrival(&ss, k, 0.2);
            // (2+eps) vs OPT; greedy <= OPT so require >= greedy/2.4.
            assert!(
                r.estimated_coverage >= greedy / 2.6,
                "seed {seed}: mv {} vs greedy {greedy}",
                r.estimated_coverage
            );
            assert_eq!(
                coverage_of(&ss, &r.chosen) as f64,
                r.estimated_coverage
            );
        }
    }

    #[test]
    fn set_arrival_empty() {
        let ss = SetSystem::new(5, vec![vec![], vec![]]);
        let r = mv_set_arrival(&ss, 2, 0.1);
        assert_eq!(r.estimated_coverage, 0.0);
    }

    #[test]
    fn edge_arrival_estimates_planted_instance() {
        let inst = planted_cover(2000, 100, 10, 0.8, 40, 7);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
        let r = MvEdgeArrival::run(2000, 100, 10, 0.4, 3, &edges);
        let opt = inst.planted_coverage as f64;
        assert!(
            r.estimated_coverage >= opt / 4.0 && r.estimated_coverage <= 1.5 * opt,
            "estimate {} vs opt {opt}",
            r.estimated_coverage
        );
    }

    #[test]
    fn edge_arrival_order_invariant_distribution() {
        // The algorithm's decisions depend only on which elements are
        // sampled, not on arrival order, so two orders give identical
        // stored sub-instances and identical results.
        let inst = planted_cover(500, 50, 5, 0.6, 20, 11);
        let e1 = edge_stream(&inst.system, ArrivalOrder::SetContiguous);
        let e2 = edge_stream(&inst.system, ArrivalOrder::Shuffled(5));
        let r1 = MvEdgeArrival::run(500, 50, 5, 0.4, 9, &e1);
        let r2 = MvEdgeArrival::run(500, 50, 5, 0.4, 9, &e2);
        assert_eq!(r1.estimated_coverage, r2.estimated_coverage);
    }

    #[test]
    fn edge_arrival_space_bounded() {
        let ss = uniform_incidence(4000, 200, 0.02, 3);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(2));
        let mut alg = MvEdgeArrival::new(4000, 200, 5, 0.5, 1);
        for &e in &edges {
            alg.observe(e);
        }
        let cap = alg.cap_per_lane * alg.lanes.len();
        assert!(alg.space_words() <= cap + 16, "space {} cap {cap}", alg.space_words());
    }

    #[test]
    fn small_exact_lane_matches_greedy() {
        // Tiny instance: the p = 1 lane stores everything, so the result
        // at least matches offline greedy.
        let ss = uniform_incidence(60, 20, 0.1, 5);
        let edges = edge_stream(&ss, ArrivalOrder::RoundRobin);
        let r = MvEdgeArrival::run(60, 20, 4, 0.3, 2, &edges);
        let g = greedy_max_cover(&ss, 4);
        assert!(r.estimated_coverage >= g.coverage as f64 * 0.99);
    }
}
