//! Exact maximum k-coverage by branch and bound.
//!
//! `Max k-Cover` is NP-hard, but small and medium instances (the scales
//! where tests want sharp ground truth) solve quickly with bitset
//! coverage, greedy seeding and a sum-of-top-sizes upper bound.

use kcov_stream::SetSystem;

/// Dense bitset over the ground set.
#[derive(Debug, Clone, PartialEq)]
struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    fn empty(n: usize) -> Self {
        Bitset {
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    fn from_members(n: usize, members: &[u32]) -> Self {
        let mut b = Bitset::empty(n);
        for &e in members {
            b.words[(e / 64) as usize] |= 1u64 << (e % 64);
        }
        b
    }

    fn union_count(&self, other: &Bitset) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a | b).count_ones() as usize)
            .sum()
    }

    fn union_in_place(&mut self, other: &Bitset) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Exact optimal k-cover: returns `(chosen indices, optimal coverage)`.
///
/// Runs branch and bound over sets ordered by decreasing size, seeded
/// with the greedy solution and pruned with the sum-of-remaining-top-k
/// sizes bound. Exponential in the worst case — intended for instances
/// with `m ≲ 40` or strong structure.
pub fn max_cover_exact(system: &SetSystem, k: usize) -> (Vec<usize>, usize) {
    let m = system.num_sets();
    let n = system.num_elements();
    if k == 0 || m == 0 {
        return (Vec::new(), 0);
    }
    let k = k.min(m);

    // Order sets by decreasing size; keep the original index.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(system.set(i).len()));
    let bitsets: Vec<Bitset> = order
        .iter()
        .map(|&i| Bitset::from_members(n, system.set(i)))
        .collect();
    let sizes: Vec<usize> = order.iter().map(|&i| system.set(i).len()).collect();

    // Greedy seed for the initial lower bound.
    let seed = crate::greedy::greedy_max_cover(system, k);
    let mut best_cov = seed.coverage;
    let mut best_choice: Vec<usize> = seed.chosen.clone();

    // Suffix sums of the largest set sizes for the upper bound: from
    // position i, choosing r more sets adds at most sizes[i..i+r].sum()
    // (sizes are non-increasing).
    struct Ctx<'a> {
        bitsets: &'a [Bitset],
        sizes: &'a [usize],
        order: &'a [usize],
        k: usize,
        best_cov: usize,
        best_choice: Vec<usize>,
    }

    fn recurse(ctx: &mut Ctx<'_>, pos: usize, chosen: &mut Vec<usize>, covered: &Bitset) {
        let cov = covered.count();
        if cov > ctx.best_cov {
            ctx.best_cov = cov;
            ctx.best_choice = chosen.iter().map(|&p| ctx.order[p]).collect();
        }
        if chosen.len() == ctx.k || pos == ctx.bitsets.len() {
            return;
        }
        // Upper bound: current coverage + sizes of the next (k - chosen)
        // sets in the (non-increasing) order.
        let remaining = ctx.k - chosen.len();
        let ub: usize = cov
            + ctx.sizes[pos..]
                .iter()
                .take(remaining)
                .sum::<usize>();
        if ub <= ctx.best_cov {
            return;
        }
        // Branch 1: take set at `pos` (skip if it adds nothing — any
        // solution containing it is dominated by one with a later set).
        let gain = covered.union_count(&ctx.bitsets[pos]) - cov;
        if gain > 0 {
            let mut next = covered.clone();
            next.union_in_place(&ctx.bitsets[pos]);
            chosen.push(pos);
            recurse(ctx, pos + 1, chosen, &next);
            chosen.pop();
        }
        // Branch 2: skip it.
        recurse(ctx, pos + 1, chosen, covered);
    }

    let mut ctx = Ctx {
        bitsets: &bitsets,
        sizes: &sizes,
        order: &order,
        k,
        best_cov,
        best_choice: best_choice.clone(),
    };
    let mut chosen = Vec::with_capacity(k);
    recurse(&mut ctx, 0, &mut chosen, &Bitset::empty(n));
    best_cov = ctx.best_cov;
    best_choice = ctx.best_choice;
    best_choice.sort_unstable();
    best_choice.truncate(k);
    (best_choice, best_cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::coverage_of;

    #[test]
    fn trivial_cases() {
        let ss = SetSystem::new(4, vec![vec![0, 1], vec![2]]);
        assert_eq!(max_cover_exact(&ss, 0), (vec![], 0));
        let empty = SetSystem::new(4, vec![]);
        assert_eq!(max_cover_exact(&empty, 3), (vec![], 0));
    }

    #[test]
    fn single_best_set() {
        let ss = SetSystem::new(6, vec![vec![0], vec![1, 2, 3], vec![4, 5]]);
        let (chosen, cov) = max_cover_exact(&ss, 1);
        assert_eq!(chosen, vec![1]);
        assert_eq!(cov, 3);
    }

    #[test]
    fn greedy_suboptimal_instance_solved_exactly() {
        // Classic instance where greedy is suboptimal: greedy takes the
        // big middle set first, exact pairs the two halves.
        let ss = SetSystem::new(8, vec![
            vec![0, 1, 2, 3],       // left half
            vec![4, 5, 6, 7],       // right half
            vec![2, 3, 4, 5, 6],    // tempting middle (size 5)
        ]);
        let (chosen, cov) = max_cover_exact(&ss, 2);
        assert_eq!(cov, 8);
        assert_eq!(chosen, vec![0, 1]);
    }

    #[test]
    fn k_larger_than_m_takes_everything() {
        let ss = SetSystem::new(5, vec![vec![0], vec![1], vec![2]]);
        let (chosen, cov) = max_cover_exact(&ss, 10);
        assert_eq!(cov, 3);
        assert_eq!(chosen.len(), 3);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use kcov_stream::gen::uniform_incidence;
        for seed in 0..8u64 {
            let ss = uniform_incidence(24, 10, 0.2, seed);
            let k = 3;
            // Brute force over all C(10,3) subsets.
            let mut best = 0;
            for a in 0..10 {
                for b in (a + 1)..10 {
                    for c in (b + 1)..10 {
                        best = best.max(coverage_of(&ss, &[a, b, c]));
                    }
                }
            }
            let (chosen, cov) = max_cover_exact(&ss, k);
            assert_eq!(cov, best, "seed {seed}");
            assert_eq!(coverage_of(&ss, &chosen), cov, "reported sets must achieve cov");
        }
    }

    #[test]
    fn chosen_sets_achieve_reported_coverage() {
        let ss = SetSystem::new(30, vec![
            vec![0, 1, 2], vec![2, 3, 4], vec![5, 6], vec![0, 5], vec![7, 8, 9],
        ]);
        let (chosen, cov) = max_cover_exact(&ss, 3);
        assert_eq!(coverage_of(&ss, &chosen), cov);
    }
}
