//! The classic greedy algorithm for maximum coverage — Nemhauser, Wolsey
//! & Fisher (reference [35] of the paper), with lazy evaluation.
//!
//! Repeatedly picks the set with the largest marginal coverage; achieves
//! the optimal-in-polynomial-time `1 − 1/e ≈ 0.632` fraction of the
//! optimum (tight under P ≠ NP, Feige [23]). This is both the paper's
//! offline yardstick and the `O(1)`-approximate offline solver its
//! `SmallSet` subroutine runs on the stored sub-instance.

use std::collections::BinaryHeap;

use kcov_stream::SetSystem;

/// Result of a greedy run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyResult {
    /// Chosen set indices in pick order.
    pub chosen: Vec<usize>,
    /// Exact coverage of the chosen sets.
    pub coverage: usize,
}

/// Lazy greedy maximum coverage.
///
/// Uses the standard lazy-evaluation trick: marginal gains only decrease
/// (submodularity), so a stale heap key is an upper bound and a popped
/// set whose refreshed gain still tops the heap is safe to take.
pub fn greedy_max_cover(system: &SetSystem, k: usize) -> GreedyResult {
    let m = system.num_sets();
    let mut covered = vec![false; system.num_elements()];
    let mut chosen = Vec::with_capacity(k.min(m));
    let mut coverage = 0usize;

    // Heap of (stale upper bound on gain, set index).
    let mut heap: BinaryHeap<(usize, usize)> = (0..m)
        .map(|i| (system.set(i).len(), i))
        .collect();

    while chosen.len() < k {
        let mut picked = None;
        while let Some((stale_gain, i)) = heap.pop() {
            if stale_gain == 0 {
                break; // nothing can add coverage anymore
            }
            let fresh: usize = system.set(i).iter().filter(|&&e| !covered[e as usize]).count();
            if fresh == stale_gain || heap.peek().is_none_or(|&(top, _)| fresh >= top) {
                if fresh == 0 {
                    picked = None;
                } else {
                    picked = Some((i, fresh));
                }
                break;
            }
            heap.push((fresh, i));
        }
        match picked {
            Some((i, gain)) => {
                for &e in system.set(i) {
                    covered[e as usize] = true;
                }
                coverage += gain;
                chosen.push(i);
            }
            None => break, // no set adds coverage
        }
    }
    GreedyResult { chosen, coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::coverage_of;
    use kcov_stream::gen::{uniform_incidence, zipf_set_sizes};

    #[test]
    fn empty_inputs() {
        let ss = SetSystem::new(3, vec![]);
        let r = greedy_max_cover(&ss, 2);
        assert!(r.chosen.is_empty());
        assert_eq!(r.coverage, 0);
    }

    #[test]
    fn picks_largest_first() {
        let ss = SetSystem::new(10, vec![vec![0], vec![1, 2, 3, 4], vec![5, 6]]);
        let r = greedy_max_cover(&ss, 1);
        assert_eq!(r.chosen, vec![1]);
        assert_eq!(r.coverage, 4);
    }

    #[test]
    fn respects_marginal_gains() {
        // After taking the big set, the disjoint small set beats the
        // overlapping medium one.
        let ss = SetSystem::new(10, vec![
            vec![0, 1, 2, 3, 4], // big
            vec![3, 4, 5],       // overlaps big, gain 1
            vec![8, 9],          // disjoint, gain 2
        ]);
        let r = greedy_max_cover(&ss, 2);
        assert_eq!(r.chosen, vec![0, 2]);
        assert_eq!(r.coverage, 7);
    }

    #[test]
    fn stops_when_everything_covered() {
        let ss = SetSystem::new(3, vec![vec![0, 1, 2], vec![0], vec![1]]);
        let r = greedy_max_cover(&ss, 3);
        assert_eq!(r.chosen.len(), 1, "no zero-gain picks");
        assert_eq!(r.coverage, 3);
    }

    #[test]
    fn coverage_matches_reported_sets() {
        for seed in 0..5u64 {
            let ss = uniform_incidence(100, 30, 0.1, seed);
            let r = greedy_max_cover(&ss, 5);
            assert_eq!(coverage_of(&ss, &r.chosen), r.coverage, "seed {seed}");
        }
    }

    #[test]
    fn guarantee_vs_exact_on_small_instances() {
        // Greedy >= (1 - 1/e)·OPT on every instance.
        for seed in 0..10u64 {
            let ss = uniform_incidence(25, 12, 0.15, seed);
            let k = 4;
            let (_, opt) = crate::exact::max_cover_exact(&ss, k);
            let g = greedy_max_cover(&ss, k);
            assert!(
                g.coverage as f64 >= (1.0 - 1.0 / std::f64::consts::E) * opt as f64 - 1e-9,
                "seed {seed}: greedy {} vs opt {opt}",
                g.coverage
            );
        }
    }

    #[test]
    fn lazy_picks_are_greedy_valid() {
        // Validate the lazy trajectory: at every step, the picked set's
        // marginal gain equals the maximum marginal gain over all sets
        // (ties may be broken differently than a naive scan, but the
        // gain value at each step must be maximal).
        for seed in 0..6u64 {
            let ss = zipf_set_sizes(200, 40, 60, 1.0, seed);
            let r = greedy_max_cover(&ss, 6);
            let mut covered = vec![false; ss.num_elements()];
            for &pick in &r.chosen {
                let gain_of = |i: usize, covered: &[bool]| {
                    ss.set(i).iter().filter(|&&e| !covered[e as usize]).count()
                };
                let pick_gain = gain_of(pick, &covered);
                let max_gain = (0..ss.num_sets()).map(|i| gain_of(i, &covered)).max().unwrap();
                assert_eq!(pick_gain, max_gain, "seed {seed}: non-greedy pick {pick}");
                for &e in ss.set(pick) {
                    covered[e as usize] = true;
                }
            }
        }
    }

    #[test]
    fn k_zero_returns_nothing() {
        let ss = SetSystem::new(5, vec![vec![0, 1]]);
        let r = greedy_max_cover(&ss, 0);
        assert!(r.chosen.is_empty());
    }

    #[test]
    fn greedy_falls_for_the_tight_trap() {
        // The (1 - 1/e) bound is *tight*: on the trap instance greedy
        // picks the rows and lands near (1 - (1-1/k)^k)·OPT, strictly
        // below optimal.
        let trap = kcov_stream::gen::greedy_trap(6, 1296);
        let r = greedy_max_cover(&trap.system, 6);
        // Greedy must have picked at least one trap row...
        assert!(
            r.chosen.iter().any(|&i| i >= 6),
            "greedy avoided the trap: {:?}",
            r.chosen
        );
        // ...and its coverage sits in the trap band.
        let ratio = r.coverage as f64 / trap.optimal as f64;
        let bound = 1.0 - (1.0 - 1.0 / 6.0f64).powi(6);
        assert!(ratio < 0.75, "ratio {ratio} too good for a trap");
        assert!(
            ratio >= bound - 0.02,
            "ratio {ratio} below the guarantee {bound}"
        );
    }
}
