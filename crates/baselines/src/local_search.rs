//! Offline swap local search for maximum coverage.
//!
//! Start from any k sets (we seed with greedy) and repeatedly apply
//! improving single swaps (remove one chosen set, add one unchosen) as
//! long as coverage increases by more than a `(1 + ε/k)` factor. The
//! classic analysis gives a 1/2-approximation for exchange-stable
//! solutions; seeded with greedy it only improves on `(1 − 1/e)`. Used
//! as an offline quality ceiling below exact search, and as an ablation
//! partner for greedy in the experiment suite.

use kcov_stream::{coverage_of, SetSystem};

use crate::greedy::greedy_max_cover;
use crate::CoverResult;

/// Swap local search seeded with greedy. `max_rounds` bounds the number
/// of full improvement sweeps; `epsilon` is the minimum relative
/// improvement accepted (both guard termination).
pub fn local_search_max_cover(
    system: &SetSystem,
    k: usize,
    epsilon: f64,
    max_rounds: usize,
) -> CoverResult {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let m = system.num_sets();
    let seed = greedy_max_cover(system, k);
    let mut chosen = seed.chosen;
    let mut coverage = seed.coverage;
    if chosen.is_empty() || k >= m {
        return CoverResult {
            chosen,
            estimated_coverage: coverage as f64,
        };
    }

    for _ in 0..max_rounds {
        let mut improved = false;
        'outer: for slot in 0..chosen.len() {
            // Coverage without the slot's set.
            let mut without: Vec<usize> = chosen.clone();
            without.swap_remove(slot);
            let base = coverage_of(system, &without);
            for candidate in 0..m {
                if chosen.contains(&candidate) {
                    continue;
                }
                without.push(candidate);
                let cov = coverage_of(system, &without);
                without.pop();
                if cov as f64 > coverage as f64 * (1.0 + epsilon / k as f64) {
                    let old = chosen[slot];
                    chosen[slot] = candidate;
                    let _ = old;
                    coverage = cov;
                    improved = true;
                    continue 'outer;
                }
                let _ = base;
            }
        }
        if !improved {
            break;
        }
    }
    CoverResult {
        chosen,
        estimated_coverage: coverage as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::uniform_incidence;

    #[test]
    fn never_worse_than_greedy() {
        for seed in 0..6u64 {
            let ss = uniform_incidence(80, 25, 0.1, seed);
            let g = greedy_max_cover(&ss, 5).coverage as f64;
            let ls = local_search_max_cover(&ss, 5, 0.0, 10);
            assert!(ls.estimated_coverage >= g, "seed {seed}");
            assert_eq!(
                coverage_of(&ss, &ls.chosen) as f64,
                ls.estimated_coverage
            );
        }
    }

    #[test]
    fn fixes_the_classic_greedy_trap() {
        // Greedy takes the middle set; one swap repairs it.
        let ss = SetSystem::new(8, vec![
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![2, 3, 4, 5, 6],
        ]);
        let r = local_search_max_cover(&ss, 2, 0.0, 10);
        assert_eq!(r.estimated_coverage, 8.0);
    }

    #[test]
    fn respects_k() {
        let ss = uniform_incidence(50, 20, 0.15, 3);
        let r = local_search_max_cover(&ss, 4, 0.0, 5);
        assert!(r.chosen.len() <= 4);
        let dedup: std::collections::HashSet<_> = r.chosen.iter().collect();
        assert_eq!(dedup.len(), r.chosen.len());
    }

    #[test]
    fn trivial_cases() {
        let empty = SetSystem::new(5, vec![]);
        let r = local_search_max_cover(&empty, 3, 0.1, 5);
        assert_eq!(r.estimated_coverage, 0.0);
        let ss = SetSystem::new(5, vec![vec![0], vec![1]]);
        let r = local_search_max_cover(&ss, 5, 0.1, 5);
        assert_eq!(r.estimated_coverage, 2.0);
    }
}
