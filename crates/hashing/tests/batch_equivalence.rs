//! Scalar-vs-batched equivalence for every `RangeHash` family: the
//! blocked flat evaluator behind the estimator's hash-once fingerprint
//! pipeline must be *bit-identical* to the per-key path on every input —
//! full blocks, uneven tails, empty input, and adversarial keys at the
//! field boundaries. A single diverging value would silently break the
//! bit-for-bit determinism contract of the batched ingestion engine, so
//! this suite is the proof obligation the hot-path refactor rests on.

use kcov_hash::{four_wise, log_wise, pairwise, KWise, PolyHash, RangeHash, TabulationHash, MERSENNE_P};

/// Key sets exercising every code path of the blocked evaluator: empty,
/// sub-block, exactly one block, block + tail, many blocks + tail, and
/// boundary values (0, p−1, p, p+1, 2^61, u64::MAX) that stress the
/// Mersenne reduction.
fn key_sets() -> Vec<Vec<u64>> {
    let boundary = vec![
        0u64,
        1,
        MERSENNE_P - 1,
        MERSENNE_P,
        MERSENNE_P + 1,
        1u64 << 61,
        (1u64 << 62) - 1,
        u64::MAX,
    ];
    let mut dense: Vec<u64> = (0..1021u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
    dense.extend_from_slice(&boundary);
    vec![
        Vec::new(),
        vec![42],
        (0..7).collect(),
        (0..8).collect(),
        (0..9).collect(),
        (0..255).collect(),
        boundary,
        dense,
    ]
}

fn assert_equivalent<H: RangeHash>(label: &str, h: &H) {
    let mut out = vec![0xdead_beefu64; 3]; // stale contents must be cleared
    for keys in key_sets() {
        h.hash_batch(&keys, &mut out);
        assert_eq!(out.len(), keys.len(), "{label}: length for {} keys", keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                out[i],
                h.hash(k),
                "{label}: lane {i} of {} diverged for key {k:#x}",
                keys.len()
            );
        }
    }
}

#[test]
fn poly_hash_all_degrees_match_scalar() {
    // Every unrolled arm (d ≤ 4), the generic Horner loop, and the
    // log-wise degrees the estimator actually uses (8..48).
    for degree in [1usize, 2, 3, 4, 5, 7, 8, 16, 28, 34, 48] {
        for seed in [1u64, 0x5eed, u64::MAX] {
            let h = PolyHash::new(degree, seed);
            assert_equivalent(&format!("PolyHash(d={degree}, seed={seed})"), &h);
        }
    }
}

#[test]
fn kwise_constructors_match_scalar() {
    assert_equivalent("pairwise", &pairwise(7));
    assert_equivalent("four_wise", &four_wise(11));
    assert_equivalent("log_wise(small)", &log_wise(16, 16, 13));
    assert_equivalent("log_wise(large)", &log_wise(1 << 20, 1 << 20, 17));
    assert_equivalent("KWise(d=9)", &KWise::new(9, 23));
}

#[test]
fn tabulation_uses_default_batch_path() {
    // TabulationHash takes the trait's default scalar-loop hash_batch;
    // the contract (clear + per-key equality) must hold there too.
    assert_equivalent("TabulationHash", &TabulationHash::new(29));
}

#[test]
fn batch_reuses_and_clears_output_buffer() {
    let h = PolyHash::new(5, 3);
    let mut out = Vec::new();
    h.hash_batch(&(0..100).collect::<Vec<_>>(), &mut out);
    assert_eq!(out.len(), 100);
    // A second call with a shorter input must not leave stale values.
    h.hash_batch(&[9, 8, 7], &mut out);
    assert_eq!(out.len(), 3);
    assert_eq!(out, vec![h.hash(9), h.hash(8), h.hash(7)]);
    h.hash_batch(&[], &mut out);
    assert!(out.is_empty());
}
