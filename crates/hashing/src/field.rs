//! Arithmetic in the prime field `GF(p)` with `p = 2^61 − 1` (a Mersenne
//! prime), the standard field for polynomial hashing: reduction needs no
//! division, and `p > 2^60` comfortably exceeds every universe size used
//! by the max-coverage algorithms (`n, m ≤ 2^32` in this workspace).

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// An element of `GF(2^61 − 1)`, kept in canonical form `0 ≤ v < p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp(u64);

impl Fp {
    /// Additive identity.
    pub const ZERO: Fp = Fp(0);
    /// Multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Construct from an arbitrary `u64`, reducing mod p.
    #[inline]
    pub fn new(v: u64) -> Self {
        Fp(reduce_partial(v))
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Field addition.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, other: Fp) -> Fp {
        // Sum of two values < 2^61 fits in u64 without overflow.
        let s = self.0 + other.0;
        Fp(if s >= MERSENNE_P { s - MERSENNE_P } else { s })
    }

    /// Field multiplication via u128 widening and Mersenne reduction.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, other: Fp) -> Fp {
        let prod = (self.0 as u128) * (other.0 as u128);
        // Split prod = hi·2^61 + lo; since 2^61 ≡ 1 (mod p), prod ≡ hi + lo.
        let lo = (prod & ((1u128 << 61) - 1)) as u64;
        let hi = (prod >> 61) as u64;
        let s = lo + hi; // < 2^62, one more fold may be needed
        Fp(reduce_partial(s))
    }

    /// Fused multiply-add `self * m + a`, the Horner step.
    #[inline]
    pub fn mul_add(self, m: Fp, a: Fp) -> Fp {
        self.mul(m).add(a)
    }

    /// Field exponentiation by squaring.
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem. Panics on zero.
    pub fn inv(self) -> Fp {
        assert!(self.0 != 0, "zero has no inverse");
        self.pow(MERSENNE_P - 2)
    }
}

/// Reduce a value `< 2^62` into `[0, p)` using at most two folds.
#[inline]
fn reduce_partial(v: u64) -> u64 {
    let mut x = (v & MERSENNE_P) + (v >> 61);
    if x >= MERSENNE_P {
        x -= MERSENNE_P;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Fp::new(MERSENNE_P).value(), 0);
        assert_eq!(Fp::new(MERSENNE_P + 5).value(), 5);
        assert_eq!(Fp::new(u64::MAX).value(), u64::MAX % MERSENNE_P);
    }

    #[test]
    fn add_wraps() {
        let a = Fp::new(MERSENNE_P - 1);
        assert_eq!(a.add(Fp::ONE).value(), 0);
        assert_eq!(a.add(Fp::new(2)).value(), 1);
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(Fp::new(7).mul(Fp::new(6)).value(), 42);
        assert_eq!(Fp::new(0).mul(Fp::new(123)).value(), 0);
        assert_eq!(Fp::new(1).mul(Fp::new(123)).value(), 123);
    }

    #[test]
    fn mul_matches_u128_reference() {
        // Deterministic pseudo-random pairs checked against the obvious
        // (slow) u128 modulo implementation.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = x % MERSENNE_P;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = x % MERSENNE_P;
            let expect = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(Fp::new(a).mul(Fp::new(b)).value(), expect);
        }
    }

    #[test]
    fn pow_and_fermat() {
        let a = Fp::new(123456789);
        assert_eq!(a.pow(0).value(), 1);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), a.mul(a));
        // Fermat: a^(p-1) = 1 for a != 0.
        assert_eq!(a.pow(MERSENNE_P - 1).value(), 1);
    }

    #[test]
    fn inverse_roundtrip() {
        for v in [1u64, 2, 3, 999999937, MERSENNE_P - 1] {
            let a = Fp::new(v);
            assert_eq!(a.mul(a.inv()).value(), 1, "inv failed for {v}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        let _ = Fp::ZERO.inv();
    }

    #[test]
    fn mul_add_is_horner_step() {
        let x = Fp::new(17);
        let m = Fp::new(19);
        let a = Fp::new(23);
        assert_eq!(x.mul_add(m, a), x.mul(m).add(a));
    }
}
