//! Limited-independence hash families for streaming algorithms.
//!
//! The algorithms of Indyk & Vakilian (PODS 2019) are specified with hash
//! functions of *limited independence*: pairwise (Lemma 4.16), 4-wise
//! (Lemma 3.5, AMS sign hashes), and `Θ(log(mn))`-wise (set sampling with
//! few random bits, Appendix A.1; superset partitioning, Claim 4.9;
//! substream sampling, Claim 2.8). This crate provides those families:
//!
//! * [`PolyHash`] — degree-(d−1) polynomial over the Mersenne-prime field
//!   `GF(2^61 − 1)`, which is exactly d-wise independent (Lemma A.2 gives
//!   the `d·log(mn)`-bit representation; a polynomial of degree d−1 with
//!   uniform coefficients achieves it).
//! * [`SignHash`] — 4-wise independent ±1 values for AMS-style `F2`
//!   sketches.
//! * [`TabulationHash`] — simple tabulation hashing, a fast 3-wise
//!   independent family with Chernoff-like concentration, used where raw
//!   speed matters more than provable d-wise independence.
//! * [`SplitMix64`] — a tiny deterministic PRNG used to derive coefficients
//!   and sub-seeds reproducibly without external dependencies.
//!
//! All hashers are cheaply cloneable, `Send + Sync`, and fully determined
//! by a `u64` seed so that every experiment in the workspace is
//! reproducible.

pub mod det_hash;
pub mod field;
pub mod kwise;
pub mod multiply_shift;
pub mod poly;
pub mod seeded;
pub mod tabulation;

pub use det_hash::DetBuildHasher;
pub use field::{Fp, MERSENNE_P};
pub use kwise::{four_wise, log_wise, pairwise, KWise, SignHash};
pub use multiply_shift::MultiplyShift;
pub use poly::PolyHash;
pub use seeded::{SeedSequence, SplitMix64};
pub use tabulation::TabulationHash;

/// A hash function from `u64` keys to a caller-chosen range.
///
/// Implementations guarantee a documented degree of independence (see each
/// type). The range mapping `hash_to_range` composes the raw field hash
/// with a modular reduction; for ranges `r ≪ 2^61` the induced bias is
/// below `r/2^61` per bucket and is irrelevant at the scales used here.
pub trait RangeHash {
    /// Raw hash value in `[0, MERSENNE_P)`.
    fn hash(&self, key: u64) -> u64;

    /// Hash into `[0, r)`. Panics if `r == 0`.
    ///
    /// Uses the multiply-shift range reduction `⌊h·r/2^61⌋` (Lemire) on
    /// the raw field hash `h ∈ [0, 2^61−1)` instead of `h mod r`: the
    /// per-bucket bias is the same `O(r/2^61)`, but the reduction costs
    /// one widening multiply instead of a 64-bit division — this runs
    /// on every CountSketch row update and superset-id reduction of the
    /// ingest hot path.
    #[inline]
    fn hash_to_range(&self, key: u64, r: u64) -> u64 {
        assert!(r > 0, "range must be positive");
        ((self.hash(key) as u128 * r as u128) >> 61) as u64
    }

    /// Bernoulli selection with probability `1/r`: true iff the key lands
    /// in bucket 0 of an `r`-bucket split. This is the paper's
    /// "`h(S) = 1`" sampling idiom (Figures 3, 4, 6 and Appendix A.1).
    #[inline]
    fn selects(&self, key: u64, r: u64) -> bool {
        self.hash_to_range(key, r) == 0
    }

    /// Evaluate [`RangeHash::hash`] over a flat block of keys into `out`
    /// (cleared first). The contract is *scalar equivalence*: for every
    /// input, `out[i] == self.hash(keys[i])` bit-for-bit — overrides may
    /// only restructure the evaluation (SIMD-friendly blocked layouts),
    /// never change the function. This is the batched hot-path entry the
    /// estimator's hash-once fingerprint pipeline is built on.
    fn hash_batch(&self, keys: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.extend(keys.iter().map(|&k| self.hash(k)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_hash_selects_matches_bucket_zero() {
        let h = poly::PolyHash::new(4, 42);
        for key in 0..1000u64 {
            assert_eq!(h.selects(key, 7), h.hash_to_range(key, 7) == 0);
        }
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        let h = poly::PolyHash::new(2, 1);
        let _ = h.hash_to_range(3, 0);
    }
}
