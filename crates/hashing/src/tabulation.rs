//! Simple tabulation hashing (Zobrist / Thorup–Zhang).
//!
//! Splits a 64-bit key into 8 bytes and XORs one random table entry per
//! byte. Only 3-wise independent, but with Chernoff-style concentration
//! for many applications (Thorup & Zhang, SICOMP 2012 — reference [39] of
//! the paper, one of the cited `F2`-heavy-hitter building blocks). Used in
//! this workspace where throughput matters and the analysis only needs
//! constant-wise independence plus good empirical behaviour.

use crate::seeded::SplitMix64;
use crate::RangeHash;
use crate::field::MERSENNE_P;

const BYTES: usize = 8;
const TABLE: usize = 256;

/// A simple tabulation hash `u64 → u64`.
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE]; BYTES]>,
}

impl TabulationHash {
    /// Create a tabulation hash with tables filled from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut tables = Box::new([[0u64; TABLE]; BYTES]);
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = rng.next_u64();
            }
        }
        TabulationHash { tables }
    }

    /// Raw 64-bit hash (full width, before any range reduction).
    #[inline]
    pub fn hash_u64(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        let mut k = key;
        for t in self.tables.iter() {
            acc ^= t[(k & 0xff) as usize];
            k >>= 8;
        }
        acc
    }

    /// Space in 64-bit words (8 tables × 256 entries).
    pub fn space_words(&self) -> usize {
        BYTES * TABLE
    }
}

impl RangeHash for TabulationHash {
    #[inline]
    fn hash(&self, key: u64) -> u64 {
        self.hash_u64(key) % MERSENNE_P
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = TabulationHash::new(10);
        let b = TabulationHash::new(10);
        for k in 0..500u64 {
            assert_eq!(a.hash_u64(k), b.hash_u64(k));
        }
    }

    #[test]
    fn distinct_seeds_distinct_functions() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        let same = (0..256u64).filter(|&k| a.hash_u64(k) == b.hash_u64(k)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn avalanche_on_single_byte_change() {
        let h = TabulationHash::new(3);
        // Flipping one input byte flips many output bits on average.
        let mut total_flips = 0u32;
        for k in 0..256u64 {
            total_flips += (h.hash_u64(k) ^ h.hash_u64(k ^ 0x01)).count_ones();
        }
        let mean = total_flips as f64 / 256.0;
        assert!(mean > 20.0 && mean < 44.0, "avalanche mean {mean}");
    }

    #[test]
    fn uniformity_into_buckets() {
        let h = TabulationHash::new(4);
        let buckets = 32usize;
        let mut counts = vec![0u32; buckets];
        let trials = 32_000u64;
        for k in 0..trials {
            counts[(h.hash_u64(k) % buckets as u64) as usize] += 1;
        }
        let expected = trials as f64 / buckets as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 6.0 * expected.sqrt(),
                "bucket {i} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn range_hash_below_p() {
        let h = TabulationHash::new(5);
        for k in 0..1000u64 {
            assert!(h.hash(k) < MERSENNE_P);
        }
    }
}
