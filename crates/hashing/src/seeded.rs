//! Deterministic seed derivation.
//!
//! Everything in this workspace is driven by explicit `u64` seeds so that
//! experiments and tests are exactly reproducible. [`SplitMix64`] is the
//! canonical tiny generator for deriving hash-function coefficients and
//! [`SeedSequence`] hands out independent sub-seeds for the many parallel
//! sub-algorithms the paper composes (guesses of `z`, repetitions,
//! frequency layers, ...).

/// SplitMix64: a 64-bit PRNG with excellent statistical quality for its
/// size and a one-word state. Used only to expand a user seed into hash
/// coefficients and sub-seeds — never as the "randomness" whose limited
/// independence the analysis relies on (that comes from [`crate::PolyHash`]).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Uses rejection sampling to avoid
    /// modulo bias. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Hands out a stream of decorrelated sub-seeds derived from a root seed
/// and a stable label, so that structurally different components never
/// share randomness even when given the same root seed.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    rng: SplitMix64,
}

impl SeedSequence {
    /// Create a sequence from a root seed.
    pub fn new(root: u64) -> Self {
        SeedSequence {
            rng: SplitMix64::new(root ^ 0xa076_1d64_78bd_642f),
        }
    }

    /// Create a sequence from a root seed and a component label; different
    /// labels yield unrelated sequences.
    pub fn labeled(root: u64, label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SeedSequence {
            rng: SplitMix64::new(root ^ h),
        }
    }

    /// Next sub-seed.
    pub fn next_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SplitMix64::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn labeled_sequences_are_independent() {
        let mut a = SeedSequence::labeled(42, "large-common");
        let mut b = SeedSequence::labeled(42, "small-set");
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn sequence_reproducible() {
        let s1: Vec<u64> = {
            let mut s = SeedSequence::new(3);
            (0..8).map(|_| s.next_seed()).collect()
        };
        let s2: Vec<u64> = {
            let mut s = SeedSequence::new(3);
            (0..8).map(|_| s.next_seed()).collect()
        };
        assert_eq!(s1, s2);
    }
}
