//! Convenience constructors for the independence degrees the paper uses,
//! plus the 4-wise ±1 sign hash for AMS `F2` sketching.

use crate::poly::PolyHash;
use crate::RangeHash;

/// A named k-wise independent hash function (thin wrapper over
/// [`PolyHash`] recording its intent).
#[derive(Debug, Clone)]
pub struct KWise {
    inner: PolyHash,
}

impl KWise {
    /// A k-wise independent function with the given degree and seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KWise {
            inner: PolyHash::new(k, seed),
        }
    }

    /// Independence degree.
    pub fn independence(&self) -> usize {
        self.inner.degree()
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Full description for serialization (see [`PolyHash::coefficients`]).
    pub fn coefficients(&self) -> Vec<u64> {
        self.inner.coefficients()
    }

    /// Rebuild from a coefficient vector.
    pub fn from_coefficients(coeffs: &[u64]) -> Self {
        KWise {
            inner: PolyHash::from_coefficients(coeffs),
        }
    }
}

impl RangeHash for KWise {
    #[inline]
    fn hash(&self, key: u64) -> u64 {
        self.inner.hash(key)
    }

    #[inline]
    fn hash_batch(&self, keys: &[u64], out: &mut Vec<u64>) {
        self.inner.hash_batch(keys, out);
    }
}

/// Pairwise (2-wise) independent hash — Lemma 4.16's sampling, KMV ranks.
pub fn pairwise(seed: u64) -> KWise {
    KWise::new(2, seed)
}

/// 4-wise independent hash — universe reduction (Lemma 3.5), AMS signs.
pub fn four_wise(seed: u64) -> KWise {
    KWise::new(4, seed)
}

/// `Θ(log(mn))`-wise independent hash, the degree used by set sampling
/// with few random bits (Appendix A.1), superset partitioning (Claim 4.9)
/// and substream sampling (Claim 2.8). The degree is `log2(m·n)` clamped
/// to `[8, 48]` — `Θ(log(mn))` while keeping the Horner evaluation cheap
/// on the hot path.
pub fn log_wise(m: usize, n: usize, seed: u64) -> KWise {
    let prod = (m.max(1) as u128) * (n.max(1) as u128);
    let bits = 128 - prod.leading_zeros() as usize;
    let degree = bits.clamp(8, 48);
    KWise::new(degree, seed)
}

/// A 4-wise independent ±1 hash, as required by AMS `F2` estimation.
#[derive(Debug, Clone)]
pub struct SignHash {
    inner: PolyHash,
}

impl SignHash {
    /// Create a sign hash from a seed.
    pub fn new(seed: u64) -> Self {
        SignHash {
            inner: PolyHash::new(4, seed),
        }
    }

    /// A pairwise (2-wise) ±1 hash. Sufficient for unbiased CountSketch
    /// point queries (E[s(x)s(y)] = 0 for x ≠ y needs only pairwise
    /// independence); the full 4-wise degree is required only where the
    /// AMS `F2` variance bound is invoked. Two fewer Horner steps per
    /// evaluation on the row-inner hot loop.
    pub fn pairwise(seed: u64) -> Self {
        SignHash {
            inner: PolyHash::new(2, seed),
        }
    }

    /// The sign (+1 or −1) assigned to `key`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.inner.hash(key) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Full description for serialization.
    pub fn coefficients(&self) -> Vec<u64> {
        self.inner.coefficients()
    }

    /// Rebuild from a coefficient vector.
    pub fn from_coefficients(coeffs: &[u64]) -> Self {
        SignHash {
            inner: PolyHash::from_coefficients(coeffs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_degrees() {
        assert_eq!(pairwise(1).independence(), 2);
        assert_eq!(four_wise(1).independence(), 4);
        let lw = log_wise(1 << 20, 1 << 20, 1);
        assert!(lw.independence() >= 8);
        assert!(lw.independence() <= 96);
    }

    #[test]
    fn log_wise_grows_with_universe() {
        let small = log_wise(16, 16, 1).independence();
        let large = log_wise(1 << 30, 1 << 30, 1).independence();
        assert!(large > small);
    }

    #[test]
    fn log_wise_handles_zero_sizes() {
        // Degenerate m = 0 or n = 0 must not panic.
        let h = log_wise(0, 0, 1);
        assert!(h.independence() >= 8);
    }

    #[test]
    fn sign_hash_is_plus_minus_one_and_balanced() {
        let s = SignHash::new(55);
        let mut sum = 0i64;
        for k in 0..4096u64 {
            let v = s.sign(k);
            assert!(v == 1 || v == -1);
            sum += v;
        }
        // Balanced to within ~4 sigma (sigma = 64).
        assert!(sum.abs() < 300, "sign bias too large: {sum}");
    }

    #[test]
    fn sign_hash_deterministic() {
        let a = SignHash::new(9);
        let b = SignHash::new(9);
        for k in 0..100u64 {
            assert_eq!(a.sign(k), b.sign(k));
        }
    }

    #[test]
    fn kwise_range_hash_delegates() {
        let k = KWise::new(3, 7);
        let p = PolyHash::new(3, 7);
        for key in 0..64u64 {
            assert_eq!(k.hash(key), p.hash(key));
        }
    }
}
