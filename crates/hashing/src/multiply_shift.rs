//! Dietzfelbinger multiply-shift hashing: the fastest known 2-universal
//! family (`h(x) = (a·x + b) >> (64 − d)` over `u64` arithmetic, with
//! odd `a`). Used where only universality (not d-wise independence) is
//! required and the hash sits on a throughput-critical path — e.g.
//! bucket selection in user workloads; the paper's algorithms keep the
//! polynomial families their analysis names.

use crate::seeded::SplitMix64;

/// A 2-universal multiply-shift hash onto `d`-bit outputs.
#[derive(Debug, Clone, Copy)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    shift: u32,
}

impl MultiplyShift {
    /// Create a hash with `out_bits`-bit outputs (`1 ..= 63`).
    pub fn new(out_bits: u32, seed: u64) -> Self {
        assert!((1..=63).contains(&out_bits), "out_bits must be in 1..=63");
        let mut rng = SplitMix64::new(seed);
        MultiplyShift {
            a: rng.next_u64() | 1, // multiplier must be odd
            b: rng.next_u64(),
            shift: 64 - out_bits,
        }
    }

    /// Hash into `[0, 2^out_bits)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        (self.a.wrapping_mul(key).wrapping_add(self.b)) >> self.shift
    }

    /// Output range size.
    pub fn range(&self) -> u64 {
        1u64 << (64 - self.shift)
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_in_range() {
        let h = MultiplyShift::new(10, 1);
        assert_eq!(h.range(), 1024);
        for k in 0..10_000u64 {
            assert!(h.hash(k) < 1024);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = MultiplyShift::new(8, 5);
        let b = MultiplyShift::new(8, 5);
        let c = MultiplyShift::new(8, 6);
        let same_ab = (0..256u64).filter(|&k| a.hash(k) == b.hash(k)).count();
        let same_ac = (0..256u64).filter(|&k| a.hash(k) == c.hash(k)).count();
        assert_eq!(same_ab, 256);
        assert!(same_ac < 40, "different seeds should disagree: {same_ac}");
    }

    #[test]
    fn pairwise_collision_rate() {
        // 2-universality: Pr[h(x) = h(y)] <= 2/2^d for multiply-shift.
        let bits = 6u32; // 64 buckets
        let keys: Vec<u64> = (0..150).collect();
        let mut collisions = 0u64;
        let mut pairs = 0u64;
        for seed in 0..60u64 {
            let h = MultiplyShift::new(bits, 500 + seed);
            let vals: Vec<u64> = keys.iter().map(|&k| h.hash(k)).collect();
            for i in 0..vals.len() {
                for j in (i + 1)..vals.len() {
                    pairs += 1;
                    collisions += u64::from(vals[i] == vals[j]);
                }
            }
        }
        let rate = collisions as f64 / pairs as f64;
        assert!(rate < 2.5 / 64.0, "collision rate {rate} above 2/m bound");
    }

    #[test]
    fn uniformity_over_sequential_keys() {
        let h = MultiplyShift::new(4, 77); // 16 buckets
        let mut counts = [0u32; 16];
        for k in 0..16_000u64 {
            counts[h.hash(k) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (600..=1400).contains(&c),
                "bucket {i} count {c} far from 1000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out_bits must be in 1..=63")]
    fn bad_bits_rejected() {
        let _ = MultiplyShift::new(0, 1);
    }
}
