//! Polynomial hashing over `GF(2^61 − 1)`.
//!
//! A degree-(d−1) polynomial with independent uniform coefficients is an
//! exactly d-wise independent hash family (the classic Carter–Wegman
//! construction). This is the workhorse family behind every sampling step
//! in the paper: Lemma A.2 notes that selecting such a function costs
//! `d·log(mn)` bits, which is exactly the coefficient vector stored here.

use crate::field::{Fp, MERSENNE_P};
use crate::seeded::SplitMix64;
use crate::RangeHash;

/// A d-wise independent hash function `u64 → [0, 2^61 − 1)`.
///
/// `PolyHash::new(d, seed)` draws `d` uniform coefficients from the seed;
/// evaluation is a Horner loop of `d − 1` field multiply-adds.
#[derive(Debug, Clone)]
pub struct PolyHash {
    coeffs: Vec<Fp>,
}

impl PolyHash {
    /// Create a d-wise independent hash function. `degree_of_independence`
    /// must be at least 1 (1-wise = constant-free uniform marginal).
    pub fn new(degree_of_independence: usize, seed: u64) -> Self {
        assert!(degree_of_independence >= 1, "independence degree must be >= 1");
        let mut rng = SplitMix64::new(seed);
        let coeffs = (0..degree_of_independence)
            .map(|i| {
                let mut c = Fp::new(rng.next_below(MERSENNE_P));
                // The leading coefficient of a degree-(d-1) polynomial must
                // be free to vary over the whole field; all-zero leading
                // coefficients merely reduce the effective degree, which is
                // harmless, but we keep at least one non-constant term so a
                // degenerate constant function cannot occur for d >= 2.
                if i + 1 == degree_of_independence && degree_of_independence >= 2 && c == Fp::ZERO {
                    c = Fp::ONE;
                }
                c
            })
            .collect();
        PolyHash { coeffs }
    }

    /// Number of stored coefficients (the independence degree d).
    pub fn degree(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient vector (canonical field representatives), lowest
    /// degree first — the function's full description, e.g. for wire
    /// serialization.
    pub fn coefficients(&self) -> Vec<u64> {
        self.coeffs.iter().map(|c| c.value()).collect()
    }

    /// Rebuild a function from its coefficient vector (the inverse of
    /// [`PolyHash::coefficients`]). Values are reduced mod p.
    pub fn from_coefficients(coeffs: &[u64]) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        PolyHash {
            coeffs: coeffs.iter().map(|&c| Fp::new(c)).collect(),
        }
    }

    /// Space in 64-bit words used by this function (Lemma A.2 accounting).
    pub fn space_words(&self) -> usize {
        self.coeffs.len()
    }
}

impl RangeHash for PolyHash {
    #[inline]
    fn hash(&self, key: u64) -> u64 {
        let x = Fp::new(key);
        // Unrolled Horner for the ubiquitous small degrees (pairwise and
        // 4-wise hashes sit on every sketch's hot path).
        match *self.coeffs.as_slice() {
            [c0] => c0.value(),
            [c0, c1] => c1.mul_add(x, c0).value(),
            [c0, c1, c2] => c2.mul_add(x, c1).mul_add(x, c0).value(),
            [c0, c1, c2, c3] => c3.mul_add(x, c2).mul_add(x, c1).mul_add(x, c0).value(),
            ref coeffs => {
                let mut acc = Fp::ZERO;
                // Horner: acc = ((c_{d-1} x + c_{d-2}) x + ...) x + c_0
                for &c in coeffs.iter().rev() {
                    acc = acc.mul_add(x, c);
                }
                acc.value()
            }
        }
    }

    /// Blocked Horner evaluation: 8 keys at a time, coefficient-outer,
    /// so each field constant is loaded once per block and the 8 lanes
    /// of independent multiply-adds autovectorize. Scalar-equivalent by
    /// construction — starting from `Fp::ZERO`, the first Horner step
    /// `ZERO·x + c_{d-1} = c_{d-1}` reproduces the unrolled small-degree
    /// arms of [`PolyHash::hash`] exactly, so every lane computes the
    /// identical field element for every degree.
    fn hash_batch(&self, keys: &[u64], out: &mut Vec<u64>) {
        const LANES: usize = 8;
        out.clear();
        out.reserve(keys.len());
        let coeffs = self.coeffs.as_slice();
        let mut blocks = keys.chunks_exact(LANES);
        for block in &mut blocks {
            let mut xs = [Fp::ZERO; LANES];
            for (x, &k) in xs.iter_mut().zip(block) {
                *x = Fp::new(k);
            }
            let mut acc = [Fp::ZERO; LANES];
            for &c in coeffs.iter().rev() {
                for lane in 0..LANES {
                    acc[lane] = acc[lane].mul_add(xs[lane], c);
                }
            }
            out.extend(acc.iter().map(|a| a.value()));
        }
        out.extend(blocks.remainder().iter().map(|&k| self.hash(k)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = PolyHash::new(5, 123);
        let b = PolyHash::new(5, 123);
        for k in 0..200u64 {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = PolyHash::new(5, 1);
        let b = PolyHash::new(5, 2);
        let same = (0..256u64).filter(|&k| a.hash(k) == b.hash(k)).count();
        assert!(same < 4, "essentially no collisions expected, saw {same}");
    }

    #[test]
    fn output_below_p() {
        let h = PolyHash::new(8, 77);
        for k in (0..10_000u64).step_by(97) {
            assert!(h.hash(k) < MERSENNE_P);
        }
    }

    #[test]
    fn uniformity_chi_square() {
        // 1-wise marginal uniformity over 16 buckets; chi-square with
        // 15 dof should stay far below the 0.999 quantile (~37.7) for a
        // healthy hash. Use a generous bound to keep the test robust.
        let h = PolyHash::new(2, 2024);
        let buckets = 16u64;
        let trials = 64_000u64;
        let mut counts = vec![0u64; buckets as usize];
        for k in 0..trials {
            counts[h.hash_to_range(k, buckets) as usize] += 1;
        }
        let expected = trials as f64 / buckets as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 60.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn pairwise_collision_rate_matches_theory() {
        // For a pairwise-independent family, Pr[h(x)=h(y)] = 1/r. Count
        // collisions into r=64 buckets over all pairs from a small key set.
        let r = 64u64;
        let keys: Vec<u64> = (0..200).collect();
        let mut total_pairs = 0u64;
        let mut collisions = 0u64;
        for seed in 0..40u64 {
            let h = PolyHash::new(2, 9000 + seed);
            let vals: Vec<u64> = keys.iter().map(|&k| h.hash_to_range(k, r)).collect();
            for i in 0..vals.len() {
                for j in (i + 1)..vals.len() {
                    total_pairs += 1;
                    if vals[i] == vals[j] {
                        collisions += 1;
                    }
                }
            }
        }
        let rate = collisions as f64 / total_pairs as f64;
        let expect = 1.0 / r as f64;
        assert!(
            (rate - expect).abs() < 0.35 * expect,
            "collision rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn four_wise_balance_of_sign_pairs() {
        // For 4-wise independence, signs derived from distinct keys are
        // 4-wise independent; check E[s(a)s(b)s(c)s(d)] ~ 0 empirically.
        let mut acc = 0i64;
        let n_seeds = 400u64;
        for seed in 0..n_seeds {
            let h = PolyHash::new(4, 31337 + seed);
            let s = |k: u64| if h.hash(k) & 1 == 0 { 1i64 } else { -1i64 };
            acc += s(10) * s(20) * s(30) * s(40);
        }
        let mean = acc as f64 / n_seeds as f64;
        assert!(mean.abs() < 0.15, "4th joint moment should vanish: {mean}");
    }

    #[test]
    fn degree_one_is_constant() {
        let h = PolyHash::new(1, 5);
        let v = h.hash(0);
        for k in 1..50u64 {
            assert_eq!(h.hash(k), v);
        }
    }

    #[test]
    fn space_words_equals_degree() {
        for d in 1..10 {
            assert_eq!(PolyHash::new(d, 1).space_words(), d);
        }
    }

    #[test]
    fn coefficients_roundtrip() {
        let h = PolyHash::new(6, 99);
        let back = PolyHash::from_coefficients(&h.coefficients());
        for k in 0..200u64 {
            assert_eq!(h.hash(k), back.hash(k));
        }
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_coefficients_rejected() {
        let _ = PolyHash::from_coefficients(&[]);
    }
}
