//! A deterministic, seedless `BuildHasher` for the workspace's internal
//! `HashMap`s of `u64` keys.
//!
//! `std`'s default SipHash is keyed per-process for HashDoS resistance,
//! which this workspace neither needs (keys are already outputs of
//! seeded hash functions, not attacker-controlled strings) nor wants on
//! the ingest hot path (SipHash costs tens of nanoseconds per probe).
//! `DetBuildHasher` finishes a `u64` key with the SplitMix64 finalizer —
//! a full-avalanche bijection — in a few cycles, and is *deterministic
//! across processes*, which keeps replica states reproducible. Nothing
//! may depend on map iteration order regardless (the determinism
//! contract already forbids it); this hasher only changes bucket
//! placement and speed, never any observable state.

use std::hash::{BuildHasher, Hasher};

/// Hasher state: the running mix of everything written so far.
#[derive(Debug, Default, Clone)]
pub struct DetU64Hasher(u64);

#[inline]
fn mix(v: u64) -> u64 {
    // SplitMix64 finalizer: a bijective full-avalanche mix.
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Hasher for DetU64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a) for non-u64 keys; correctness only,
        // the hot paths all key on u64.
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = mix(h);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix(self.0 ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Deterministic `BuildHasher`: every process, every run, the same
/// bucket placement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DetBuildHasher;

impl BuildHasher for DetBuildHasher {
    type Hasher = DetU64Hasher;

    #[inline]
    fn build_hasher(&self) -> DetU64Hasher {
        DetU64Hasher(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let a = DetBuildHasher;
        let b = DetBuildHasher;
        for k in [0u64, 1, 42, u64::MAX, 0x5eed_c0de] {
            let mut ha = a.build_hasher();
            ha.write_u64(k);
            let mut hb = b.build_hasher();
            hb.write_u64(k);
            assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn distinct_keys_avalanche() {
        // Adjacent keys must not land adjacent: count collisions of the
        // low 10 bits over a dense key range.
        let bh = DetBuildHasher;
        let mut buckets = vec![0u32; 1024];
        for k in 0..10_000u64 {
            let mut h = bh.build_hasher();
            h.write_u64(k);
            buckets[(h.finish() & 1023) as usize] += 1;
        }
        let max = buckets.iter().copied().max().unwrap();
        assert!(max < 40, "low-bit clustering: max bucket {max}");
    }

    #[test]
    fn works_as_hashmap_hasher() {
        let mut m: HashMap<u64, u64, DetBuildHasher> = HashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&1998));
    }
}
