//! Quickstart: estimate and report a maximum k-cover from a single pass
//! over an edge-arrival stream.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use maxkcov::baselines::greedy_max_cover;
use maxkcov::core::{EstimatorConfig, MaxCoverEstimator, MaxCoverReporter};
use maxkcov::sketch::SpaceUsage;
use maxkcov::stream::gen::planted_cover;
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder};

fn main() {
    // A set system with a known planted optimum: 10 disjoint sets
    // jointly covering 80% of 5000 elements, hidden among 500 decoys.
    let (n, m, k) = (5_000usize, 500usize, 10usize);
    let inst = planted_cover(n, m, k, 0.8, 100, 2024);
    println!("instance: n={n} m={m} k={k}, planted OPT = {}", inst.planted_coverage);

    // The stream: (set, element) pairs in adversarially shuffled order —
    // the general edge-arrival model. No algorithm below ever sees a
    // set as a contiguous object.
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(7));
    println!("stream: {} edges in arbitrary order", edges.len());

    // Offline yardstick (needs the whole instance in memory).
    let greedy = greedy_max_cover(&inst.system, k);
    println!("offline greedy coverage: {}", greedy.coverage);

    // --- Estimation (Theorem 3.1): Õ(m/α²) space. ---
    // Ingest through the batched engine: chunks amortise per-edge
    // dispatch and `threads` shards the guess × repetition lanes. The
    // result is bit-identical to a per-edge `observe` loop at any
    // thread count.
    let alpha = 4.0;
    let config = EstimatorConfig::practical(42).with_threads(2);
    let mut estimator = MaxCoverEstimator::new(n, m, k, alpha, &config);
    for chunk in edges.chunks(4096) {
        estimator.observe_batch(chunk);
    }
    let out = estimator.finalize();
    println!(
        "\nestimate (alpha = {alpha}): {:.0}   [true OPT {}, sound: estimate <= OPT]",
        out.estimate, inst.planted_coverage
    );
    println!(
        "estimator state: {} words (vs {} words to store the stream)",
        estimator.space_words(),
        edges.len()
    );
    println!("winning guess z = {}, subroutine = {:?}", out.winning_z, out.winner);

    // --- Reporting (Theorem 3.2): Õ(m/α² + k) space. ---
    let mut reporter = MaxCoverReporter::new(n, m, k, alpha, &config);
    for chunk in edges.chunks(4096) {
        reporter.observe_batch(chunk);
    }
    let cover = reporter.finalize();
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    let real = coverage_of(&inst.system, &chosen);
    println!(
        "\nreported k-cover: {} sets with real coverage {} ({}% of planted OPT)",
        cover.sets.len(),
        real,
        100 * real / inst.planted_coverage
    );
}
