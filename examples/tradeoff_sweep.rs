//! A user-facing miniature of experiment E2: watch the estimator's
//! space budget fall as `1/α²` while the approximation loosens — the
//! paper's headline trade-off, live.
//!
//! ```text
//! cargo run --release --example tradeoff_sweep
//! ```

use maxkcov::core::{EstimatorConfig, MaxCoverEstimator};
use maxkcov::sketch::SpaceUsage;
use maxkcov::stream::gen::planted_cover;
use maxkcov::stream::{edge_stream, ArrivalOrder};

fn main() {
    let (n, m, k) = (20_000usize, 3_000usize, 50usize);
    let inst = planted_cover(n, m, k, 0.8, 100, 17);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(3));
    let opt = inst.planted_coverage as f64;
    println!("instance: n={n} m={m} k={k}, planted OPT = {opt}, stream = {} edges", edges.len());
    println!("\n{:>6} {:>14} {:>12} {:>12} {:>10}", "alpha", "space (words)", "m/alpha^2", "estimate", "est/OPT");

    for alpha in [2.0f64, 4.0, 8.0, 16.0, 32.0] {
        let mut config = EstimatorConfig::practical(23).with_threads(2);
        config.reps = Some(1);
        let mut est = MaxCoverEstimator::new(n, m, k, alpha, &config);
        // Batched ingestion: bit-identical to per-edge `observe`,
        // cheaper per edge, and lane-parallel across threads.
        for chunk in edges.chunks(8192) {
            est.observe_batch(chunk);
        }
        let out = est.finalize();
        println!(
            "{:>6} {:>14} {:>12.0} {:>12.0} {:>10.3}",
            alpha,
            est.space_words(),
            m as f64 / (alpha * alpha),
            out.estimate,
            out.estimate / opt
        );
    }
    println!("\nspace tracks m/alpha^2 (the paper's tight bound); the estimate");
    println!("degrades gracefully as alpha grows and never exceeds OPT.");
}
