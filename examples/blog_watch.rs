//! Multi-topic blog-watch — the application that motivated the first
//! streaming max-cover algorithm (Saha & Getoor, reference [37]).
//!
//! Blogs post stories; each story mentions topics. We want to follow
//! `k` blogs that jointly cover as many topics as possible. Posts
//! arrive one at a time — each post is a burst of (blog, topic) pairs —
//! so the stream is edge-arrival and interleaved across blogs: a blog's
//! topic set is never contiguous.
//!
//! Compares the swap-based set-arrival baseline (which must be given
//! the materialized per-blog sets, i.e. cheats) with the edge-arrival
//! reporter (which runs on the true stream).
//!
//! ```text
//! cargo run --release --example blog_watch
//! ```

use maxkcov::baselines::{greedy_max_cover, SwapStreaming};
use maxkcov::core::{EstimatorConfig, MaxCoverReporter};
use maxkcov::hash::SplitMix64;
use maxkcov::stream::{coverage_of, Edge, SetSystem};

fn main() {
    let blogs = 1_500usize;
    let topics = 6_000usize;
    let k = 12usize;
    let mut rng = SplitMix64::new(11);

    // Simulated feed: 30k posts; blog popularity and topic popularity
    // both Zipfian; each post mentions 1-6 topics.
    let mut stream: Vec<Edge> = Vec::new();
    for _ in 0..30_000 {
        // Zipf-ish blog pick via squaring a uniform.
        let u = rng.next_f64();
        let blog = ((u * u) * blogs as f64) as u32 % blogs as u32;
        let mentions = 1 + rng.next_below(6);
        for _ in 0..mentions {
            let v = rng.next_f64();
            let topic = ((v * v * v) * topics as f64) as u32 % topics as u32;
            stream.push(Edge::new(blog, topic));
        }
    }
    println!(
        "feed: {} (blog, topic) mentions across {blogs} blogs / {topics} topics; follow k={k}",
        stream.len()
    );

    // Edge-arrival streaming reporter on the raw feed.
    let alpha = 4.0;
    let config = EstimatorConfig::practical(3);
    let mut reporter = MaxCoverReporter::new(topics, blogs, k, alpha, &config);
    for &e in &stream {
        reporter.observe(e);
    }
    let cover = reporter.finalize();

    // Offline materialization for ground truth + the set-arrival
    // baseline (which requires exactly this materialization).
    let system = SetSystem::from_edges(topics, blogs, &stream);
    let greedy = greedy_max_cover(&system, k);
    let swap = SwapStreaming::run(&system, k);

    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    let covered = coverage_of(&system, &chosen);
    let swap_cov = coverage_of(&system, &swap.chosen);

    println!("\noffline greedy:             {} topics", greedy.coverage);
    println!(
        "set-arrival swap [37]:      {} topics (needs materialized sets)",
        swap_cov
    );
    println!(
        "edge-arrival reporter:      {} topics ({}% of greedy) on the raw feed",
        covered,
        100 * covered / greedy.coverage.max(1)
    );
    println!(
        "reporter: {} blogs, estimate {:.0}, winner {:?}, space {} words",
        cover.sets.len(),
        cover.estimate,
        cover.winner,
        cover.space_words
    );
}
