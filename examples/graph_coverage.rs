//! Graph neighborhood coverage — the paper's footnote-2 motivation for
//! the edge-arrival model.
//!
//! Sets are out-neighborhoods of vertices in a directed graph: choosing
//! `k` vertices to maximize the number of distinct reached vertices
//! (influence seeding, sensor placement). When the graph arrives as an
//! *in-edge* listing — each target vertex lists its in-neighbors — every
//! set (out-neighborhood) is scattered across the stream, so
//! set-arrival algorithms are inapplicable while the edge-arrival
//! estimator runs unchanged.
//!
//! ```text
//! cargo run --release --example graph_coverage
//! ```

use maxkcov::baselines::greedy_max_cover;
use maxkcov::core::{EstimatorConfig, MaxCoverReporter};
use maxkcov::hash::SplitMix64;
use maxkcov::stream::{coverage_of, Edge, SetSystem};

/// A power-law-ish random directed graph: vertex v gets out-degree
/// `∝ 1/(rank+1)` up to `max_deg`.
fn random_digraph(vertices: usize, max_deg: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::new(seed);
    let mut arcs = Vec::new();
    for v in 0..vertices {
        let deg = (max_deg as f64 / ((v % 97) + 1) as f64).ceil() as usize;
        for _ in 0..deg.max(1) {
            let to = rng.next_below(vertices as u64) as u32;
            if to != v as u32 {
                arcs.push((v as u32, to));
            }
        }
    }
    arcs
}

fn main() {
    let vertices = 4_000usize;
    let k = 16usize;
    let arcs = random_digraph(vertices, 120, 99);
    println!(
        "digraph: {vertices} vertices, {} arcs; choose k={k} seeds to reach most vertices",
        arcs.len()
    );

    // The stream arrives as in-edge listings: for each target vertex,
    // its in-neighbors — i.e. for arc (v → u): set v covers element u,
    // delivered grouped by u (element-contiguous), the exact situation
    // of footnote 2.
    let mut stream: Vec<Edge> = arcs.iter().map(|&(v, u)| Edge::new(v, u)).collect();
    stream.sort_by_key(|e| e.elem);

    // One pass, Õ(m/α²) space.
    let alpha = 4.0;
    let config = EstimatorConfig::practical(5);
    let mut reporter = MaxCoverReporter::new(vertices, vertices, k, alpha, &config);
    for &e in &stream {
        reporter.observe(e);
    }
    let cover = reporter.finalize();

    // Offline comparison.
    let system = SetSystem::from_edges(vertices, vertices, &stream);
    let greedy = greedy_max_cover(&system, k);
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    let reached = coverage_of(&system, &chosen);

    println!("\noffline greedy reach: {}", greedy.coverage);
    println!(
        "streaming reported seeds: {:?}…  ({} seeds)",
        &cover.sets[..cover.sets.len().min(8)],
        cover.sets.len()
    );
    println!(
        "streaming reach: {reached} ({}% of greedy), estimate {:.0}, winner {:?}",
        100 * reached / greedy.coverage.max(1),
        cover.estimate,
        cover.winner
    );
    println!("space: {} words", cover.space_words);
}
