//! Distributed sketching: shard the edge stream across workers, sketch
//! each shard independently, merge, then solve — the deployment pattern
//! the mergeable-sketch substrate (KMV / BJKST / CountSketch / AMS)
//! enables.
//!
//! Here four "workers" each see a quarter of a shuffled edge stream,
//! build per-set bottom-t coverage summaries (the BEM-style sketch),
//! and a coordinator merges them and runs greedy over the merged
//! summaries. The merged result is bit-identical to a single-machine
//! pass (sketches are exactly mergeable), demonstrated live.
//!
//! The finale runs the same pattern through the *whole* paper stack:
//! `MaxCoverEstimator` replicas over stream shards, folded back with
//! `merge` (DESIGN.md §8) — same estimate as the serial pass.
//!
//! ```text
//! cargo run --release --example distributed_merge
//! ```

use maxkcov::baselines::{greedy_max_cover, SketchedGreedy};
use maxkcov::core::{EstimatorConfig, MaxCoverEstimator};
use maxkcov::sketch::SpaceUsage;
use maxkcov::stream::gen::zipf_set_sizes;
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder};

fn main() {
    let (n, m, k) = (20_000usize, 2_000usize, 25usize);
    let system = zipf_set_sizes(n, m, 2_000, 1.05, 11);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(3));
    println!(
        "corpus: n={n} m={m}, {} edges, budget k={k}",
        edges.len()
    );

    // Four workers, same seed (the sketches must share hash functions —
    // in a real deployment the coordinator distributes the seed).
    let workers = 4;
    let seed = 99;
    let t = 64;
    let shard_size = edges.len().div_ceil(workers);
    let mut shards: Vec<SketchedGreedy> = (0..workers)
        .map(|_| SketchedGreedy::new(m, t, seed))
        .collect();
    for (w, chunk) in edges.chunks(shard_size).enumerate() {
        for &e in chunk {
            shards[w].observe(e);
        }
    }
    for (w, s) in shards.iter().enumerate() {
        println!("worker {w}: sketched its shard in {} words", s.space_words());
    }

    // Coordinator: merge and solve.
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    let distributed = merged.finish(k);

    // Reference: one machine sees everything.
    let mut single = SketchedGreedy::new(m, t, seed);
    for &e in &edges {
        single.observe(e);
    }
    let centralized = single.finish(k);

    assert_eq!(distributed.chosen, centralized.chosen);
    assert_eq!(
        distributed.estimated_coverage,
        centralized.estimated_coverage
    );
    println!("\nmerged result == single-pass result (exactly): OK");

    let chosen: Vec<usize> = distributed.chosen.to_vec();
    let real = coverage_of(&system, &chosen);
    let greedy = greedy_max_cover(&system, k);
    println!(
        "distributed cover: {} sets, real coverage {} ({}% of offline greedy {})",
        chosen.len(),
        real,
        100 * real / greedy.coverage.max(1),
        greedy.coverage
    );
    println!(
        "estimate from merged sketches: {:.0}",
        distributed.estimated_coverage
    );

    // The same pattern through the full estimator stack: each worker
    // runs a complete `MaxCoverEstimator` replica over its shard, and
    // the coordinator folds them with `merge` at finalize. The paper's
    // Õ(m/α²)-space estimate is identical to a single-machine pass.
    let alpha = 4.0;
    let config = EstimatorConfig::practical(seed);
    let serial = MaxCoverEstimator::run(n, m, k, alpha, &config, &edges);
    let sharded_config = config.clone().with_shards(workers);
    let sharded = MaxCoverEstimator::run_sharded(n, m, k, alpha, &sharded_config, &edges, 8192);
    assert_eq!(serial.estimate.to_bits(), sharded.estimate.to_bits());
    println!(
        "\nfull-stack shard merge ({workers} estimator replicas): estimate {:.0} == serial {:.0}: OK",
        sharded.estimate, serial.estimate
    );
}
